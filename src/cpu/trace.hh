/**
 * @file
 * The dynamic instruction record consumed by the timing model.
 *
 * The paper's simulator is trace-driven with register/memory values;
 * ours is trace-driven with explicit register dependences, which is
 * the part of that information the timing model actually needs:
 * dependences determine which off-chip accesses can overlap and hence
 * where epoch boundaries fall.
 */

#ifndef EBCP_CPU_TRACE_HH
#define EBCP_CPU_TRACE_HH

#include <cstddef>
#include <cstdint>

#include "cpu/op_class.hh"
#include "util/types.hh"

namespace ebcp
{

namespace ckpt
{
class Archiver;
}

/** Architectural register count visible to the trace format. */
constexpr unsigned NumArchRegs = 64;

/** "No register" marker for src/dst fields. */
constexpr std::uint8_t NoReg = 0xff;

/** One dynamic instruction. */
struct TraceRecord
{
    Addr pc = 0;               //!< virtual==physical PC (Sec. 3.4.1)
    Addr addr = 0;             //!< effective address for loads/stores
    OpClass op = OpClass::Nop;
    std::uint8_t dstReg = NoReg;
    std::uint8_t srcReg0 = NoReg;
    std::uint8_t srcReg1 = NoReg;
    bool taken = false;        //!< branch outcome (control classes)
    Addr target = 0;           //!< branch target (control classes)
};

/**
 * Clamp out-of-range fields of a record from an untrusted source
 * (corrupt trace file, fault injection): an unknown op class becomes a
 * Nop and an out-of-range register id becomes NoReg, so a flipped bit
 * can at worst mistime an instruction, never index out of bounds.
 *
 * @return true if anything was clamped.
 */
inline bool
sanitizeRecord(TraceRecord &r)
{
    bool touched = false;
    if (static_cast<unsigned char>(r.op) >
        static_cast<unsigned char>(OpClass::Nop)) {
        r.op = OpClass::Nop;
        touched = true;
    }
    const auto clampReg = [&touched](std::uint8_t &reg) {
        if (reg >= NumArchRegs && reg != NoReg) {
            reg = NoReg;
            touched = true;
        }
    };
    clampReg(r.dstReg);
    clampReg(r.srcReg0);
    clampReg(r.srcReg1);
    return touched;
}

/**
 * Well-formedness check used by the audit layer. Every legitimate
 * source in this repo (synthetic workloads, and trace files written
 * from them) constructs records from defaults, so a non-control
 * record never carries branch state and a non-memory record never
 * carries an effective address. Either one signals corruption --
 * e.g. a bit flipped into taken/target/addr -- that sanitizeRecord()
 * cannot see because the field values are individually plausible.
 *
 * @return a short description of the defect, or nullptr when clean.
 */
inline const char *
recordAuditError(const TraceRecord &r)
{
    if (!isControl(r.op) && (r.taken || r.target != 0))
        return "non-control record carries branch state";
    if (!isMem(r.op) && r.addr != 0)
        return "non-memory record carries an effective address";
    return nullptr;
}

/** Pull-model trace source. */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /**
     * Produce the next dynamic instruction.
     * @return false when the source is exhausted (synthetic sources
     *         never are).
     */
    virtual bool next(TraceRecord &rec) = 0;

    /**
     * Produce up to @p max records into @p out, returning how many
     * were produced (fewer than @p max only at exhaustion, matching
     * next()'s false). The core pulls records in batches so the
     * per-instruction virtual dispatch amortizes; this default simply
     * loops next(), and hot sources override it to fill @p out
     * directly.
     */
    virtual std::size_t
    nextBatch(TraceRecord *out, std::size_t max)
    {
        std::size_t n = 0;
        while (n < max && next(out[n]))
            ++n;
        return n;
    }

    /**
     * Zero-copy pull: a source that buffers decoded records
     * contiguously can hand the consumer a span of that buffer
     * instead of copying through nextBatch(). Pair every peekSpan()
     * with a consumeSpan() of at most the returned length; the span
     * stays valid until then. Sources answering false from
     * spanSource() keep the default (never called by DecodeAhead).
     */
    virtual bool spanSource() const { return false; }

    /** @return a span of at most @p max decoded records in *out, or 0
     * at exhaustion. Only meaningful when spanSource() is true. */
    virtual std::size_t
    peekSpan(const TraceRecord **out, std::size_t max)
    {
        (void)out;
        (void)max;
        return 0;
    }

    /** Retire @p n records of the last peeked span. */
    virtual void consumeSpan(std::size_t n) { (void)n; }

    /** Restart the source deterministically. */
    virtual void reset() = 0;

    /**
     * Serialize or restore the source's read cursor (checkpointing).
     * The default fails the archive: a source without an override has
     * no resumable cursor and a checkpoint taken over it would replay
     * records from the wrong position on restore.
     */
    virtual void ckpt(ckpt::Archiver &ar);
};

/** Serialize or restore one trace record field-by-field. */
void ckptRecord(ckpt::Archiver &ar, TraceRecord &rec);

} // namespace ebcp

#endif // EBCP_CPU_TRACE_HH
