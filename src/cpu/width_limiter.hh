/**
 * @file
 * A W-events-per-cycle resource limiter for the one-pass timing model.
 */

#ifndef EBCP_CPU_WIDTH_LIMITER_HH
#define EBCP_CPU_WIDTH_LIMITER_HH

#include "util/logging.hh"
#include "util/types.hh"

namespace ebcp
{

/**
 * Models a pipeline resource that can service @c width events per
 * cycle, presented in program order. next() returns the cycle the
 * event actually uses, which is never earlier than the previous
 * event's cycle (in-order stages) nor earlier than @p earliest.
 */
class WidthLimiter
{
  public:
    explicit WidthLimiter(unsigned width) : width_(width)
    {
        panic_if(width == 0, "WidthLimiter of zero width");
    }

    /** Claim a slot at or after @p earliest. */
    Tick
    next(Tick earliest)
    {
        if (earliest > cur_) {
            cur_ = earliest;
            used_ = 1;
            return cur_;
        }
        if (used_ < width_) {
            ++used_;
            return cur_;
        }
        ++cur_;
        used_ = 1;
        return cur_;
    }

    /** Forget scheduling state (new run). */
    void
    clear()
    {
        cur_ = 0;
        used_ = 0;
    }

    /** Scheduling state, for checkpointing. */
    Tick cur() const { return cur_; }
    unsigned used() const { return used_; }

    /** Restore previously captured scheduling state. */
    void
    setState(Tick cur, unsigned used)
    {
        cur_ = cur;
        used_ = used;
    }

  private:
    unsigned width_;
    Tick cur_ = 0;
    unsigned used_ = 0;
};

} // namespace ebcp

#endif // EBCP_CPU_WIDTH_LIMITER_HH
