/**
 * @file
 * Decode-ahead staging between a TraceSource and the core loop.
 *
 * The core used to pull 64-record batches straight from the source
 * inside its retirement loop, serializing trace decode (transaction
 * generation or file decode) with timing simulation. DecodeAhead
 * splits the two into a producer/consumer pipeline over chunk
 * buffers:
 *
 *  - on a multi-core host, a producer thread fills the next chunk
 *    while the core drains the current one (double buffering, handed
 *    off under a mutex + condition variable so the handoff is clean
 *    under TSan);
 *  - on a single-core host -- where a producer thread would only add
 *    context switches -- the refill runs inline, and the pipeline
 *    still pays for itself by exposing records as a zero-copy span of
 *    the chunk (the core reads chunk memory directly; the old path
 *    copied every record through a stack batch);
 *  - a source that buffers decoded records contiguously
 *    (TraceSource::spanSource) skips the chunks entirely: acquire()
 *    forwards the source's own buffer span to the consumer, so the
 *    generate->simulate path performs zero per-record copies.
 *
 * Chunk buffers are leased from a thread-local FreeListPool arena, so
 * each sweep-worker thread recycles the same chunk storage across
 * every run it executes -- run-local allocations never touch the
 * global allocator after a worker's first run.
 *
 * The exact-count contract of the core loop is preserved: over its
 * lifetime a pipe pulls exactly the requested record count from the
 * source (fewer only if the source runs dry), so at normal completion
 * the source is positioned as if records had been pulled one at a
 * time -- which is what lets a warm checkpoint serialized after the
 * run fork bit-identical measured phases. An abandoned run (watchdog
 * or audit abort) may leave the producer having pulled ahead; the
 * run's contract already declares the source dead in that case.
 */

#ifndef EBCP_CPU_DECODE_AHEAD_HH
#define EBCP_CPU_DECODE_AHEAD_HH

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "cpu/trace.hh"
#include "util/object_pool.hh"
#include "util/profiler.hh"

namespace ebcp
{

/** Per-thread arena recycling decode chunk buffers across runs. */
inline FreeListPool<std::vector<TraceRecord>> &
decodeChunkArena()
{
    thread_local FreeListPool<std::vector<TraceRecord>> arena;
    return arena;
}

/** The staging pipe. One per CoreModel::run invocation. */
class DecodeAhead
{
    /** Records per chunk: large enough to amortize the source's
     * virtual dispatch and the producer handoff, small enough that
     * double buffering stays cache-resident (2 x 32KB). */
    static constexpr std::size_t kChunkRecords = 1024;

    /** Runs shorter than this keep the inline path even on multi-core
     * hosts: thread startup would cost more than the overlap wins
     * (the deadline-armed core runs in 8192-instruction chunks). */
    static constexpr std::uint64_t kThreadedMin = 65536;

  public:
    DecodeAhead(TraceSource &src, std::uint64_t count)
        : src_(src), budget_(count), spanMode_(src.spanSource()),
          threaded_(!spanMode_ && count >= kThreadedMin &&
                    std::thread::hardware_concurrency() > 1)
    {
        if (spanMode_)
            return; // reads the source's own buffer; no chunks at all
        for (auto &c : chunks_) {
            c = decodeChunkArena().acquire();
            c->resize(kChunkRecords);
        }
        if (threaded_)
            producer_ = std::thread([this] { produce(); });
    }

    ~DecodeAhead()
    {
        if (threaded_) {
            {
                std::lock_guard<std::mutex> lk(mu_);
                stop_ = true;
            }
            cv_.notify_all();
            producer_.join();
        }
        for (auto &c : chunks_)
            if (c)
                decodeChunkArena().release(std::move(c));
    }

    DecodeAhead(const DecodeAhead &) = delete;
    DecodeAhead &operator=(const DecodeAhead &) = delete;

    /**
     * Expose the next contiguous span of records, at most @p max.
     * @return the span length; 0 when the requested count has been
     *         fully delivered or the source ran dry.
     */
    std::size_t
    acquire(const TraceRecord **out, std::size_t max)
    {
        if (spanMode_) {
            if (budget_ == 0)
                return 0;
            const std::size_t want = static_cast<std::size_t>(
                budget_ < max ? budget_ : max);
            std::size_t got;
            {
                EBCP_PROFILE_SCOPE(Decode);
                got = src_.peekSpan(out, want);
            }
            if (got == 0)
                budget_ = 0; // source dry: stop asking
            return got;
        }
        if (pos_ == len_ && !refill())
            return 0;
        *out = chunks_[cur_]->data() + pos_;
        const std::size_t avail = len_ - pos_;
        return avail < max ? avail : max;
    }

    /** Mark @p n records of the last acquired span as processed. */
    void
    consume(std::size_t n)
    {
        if (spanMode_) {
            src_.consumeSpan(n);
            budget_ -= n;
            return;
        }
        pos_ += n;
    }

  private:
    /** Swap in the next filled chunk; @return false when no records
     * remain (budget delivered or source dry). */
    bool
    refill()
    {
        if (threaded_)
            return refillThreaded();
        const std::size_t want = static_cast<std::size_t>(
            budget_ < kChunkRecords ? budget_ : kChunkRecords);
        if (want == 0)
            return false;
        std::size_t got;
        {
            EBCP_PROFILE_SCOPE(Decode);
            got = src_.nextBatch(chunks_[0]->data(), want);
        }
        budget_ -= got;
        if (got < want)
            budget_ = 0; // source dry: stop asking
        cur_ = 0;
        pos_ = 0;
        len_ = got;
        return len_ > 0;
    }

    bool
    refillThreaded()
    {
        std::unique_lock<std::mutex> lk(mu_);
        if (len_ > 0) { // hand the drained chunk back to the producer
            filled_[cur_] = false;
            len_ = 0;
            cv_.notify_all();
            cur_ ^= 1;
        }
        cv_.wait(lk, [this] {
            return filled_[cur_] || producerDone_;
        });
        if (!filled_[cur_])
            return false;
        pos_ = 0;
        len_ = chunkLen_[cur_];
        return len_ > 0;
    }

    /** Producer-thread body: fill free chunks in order until the
     * budget is delivered, the source runs dry, or the consumer
     * abandons the run. */
    void
    produce()
    {
        std::size_t fill = 0;
        std::uint64_t budget = budget_;
        while (budget > 0) {
            {
                std::unique_lock<std::mutex> lk(mu_);
                cv_.wait(lk, [&] { return !filled_[fill] || stop_; });
                if (stop_)
                    return;
            }
            const std::size_t want = static_cast<std::size_t>(
                budget < kChunkRecords ? budget : kChunkRecords);
            const std::size_t got =
                src_.nextBatch(chunks_[fill]->data(), want);
            budget -= got;
            if (got < want)
                budget = 0;
            {
                std::lock_guard<std::mutex> lk(mu_);
                chunkLen_[fill] = got;
                filled_[fill] = true;
                if (budget == 0)
                    producerDone_ = true;
            }
            cv_.notify_all();
            fill ^= 1;
        }
    }

    TraceSource &src_;
    std::uint64_t budget_;
    std::unique_ptr<std::vector<TraceRecord>> chunks_[2];
    const bool spanMode_;
    const bool threaded_;

    // Consumer cursor into the current chunk.
    std::size_t cur_ = 0;
    std::size_t pos_ = 0;
    std::size_t len_ = 0;

    // Threaded-mode handoff state, all guarded by mu_.
    std::mutex mu_;
    std::condition_variable cv_;
    bool filled_[2] = {false, false};
    std::size_t chunkLen_[2] = {0, 0};
    bool producerDone_ = false;
    bool stop_ = false;
    std::thread producer_;
};

} // namespace ebcp

#endif // EBCP_CPU_DECODE_AHEAD_HH
