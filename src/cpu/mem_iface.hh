/**
 * @file
 * The memory-system interface seen by the core timing model.
 *
 * The core is deliberately ignorant of caches, prefetchers and buses:
 * it presents instruction fetches, loads and stores with issue times
 * and receives completion times plus an "off-chip" flag (which feeds
 * window-termination and epoch accounting). sim/ provides the real
 * hierarchy; tests provide stub implementations.
 */

#ifndef EBCP_CPU_MEM_IFACE_HH
#define EBCP_CPU_MEM_IFACE_HH

#include "util/types.hh"

namespace ebcp
{

/** Result of a timed memory-system access. */
struct MemOutcome
{
    Tick complete = 0;  //!< when the data is available to the core
    bool offChip = false; //!< true if the access left the chip
};

/** Abstract timed memory system. */
class MemSystem
{
  public:
    virtual ~MemSystem() = default;

    /** Fetch the instruction line containing @p pc at @p when. */
    virtual MemOutcome fetchInst(Addr pc, Tick when) = 0;

    /**
     * Perform a load from @p addr issued at @p when.
     * @param pc the load's PC (PC-localized prefetchers need it)
     */
    virtual MemOutcome load(Addr addr, Addr pc, Tick when) = 0;

    /**
     * Retire a store to @p addr at @p when.
     * @return when the store drains from the store buffer.
     */
    virtual Tick store(Addr addr, Tick when) = 0;

    /** Cache line size, for fetch-line and access-line alignment. */
    virtual unsigned lineBytes() const = 0;
};

} // namespace ebcp

#endif // EBCP_CPU_MEM_IFACE_HH
