/**
 * @file
 * Instruction operation classes and their execution properties.
 */

#ifndef EBCP_CPU_OP_CLASS_HH
#define EBCP_CPU_OP_CLASS_HH

#include "util/types.hh"

namespace ebcp
{

/** Coarse operation classes, enough to drive the timing model. */
enum class OpClass : unsigned char
{
    IntAlu,    //!< single-cycle integer op
    FpAdd,     //!< floating-point add pipeline
    FpMul,     //!< floating-point multiply pipeline
    Load,      //!< memory load
    Store,     //!< memory store
    Branch,    //!< conditional branch
    Call,      //!< call (pushes RAS)
    Return,    //!< return (pops RAS)
    Serialize, //!< serializing instruction (drains the window)
    Nop,       //!< no-op
};

/** @return execution latency in ticks (loads/stores excluded: their
 * latency comes from the memory system). */
constexpr Tick
opLatency(OpClass op)
{
    switch (op) {
      case OpClass::FpAdd: return 3;
      case OpClass::FpMul: return 4;
      case OpClass::Serialize: return 1;
      default: return 1;
    }
}

/** @return true for any control-transfer class. */
constexpr bool
isControl(OpClass op)
{
    return op == OpClass::Branch || op == OpClass::Call ||
           op == OpClass::Return;
}

/** @return true for loads and stores. */
constexpr bool
isMem(OpClass op)
{
    return op == OpClass::Load || op == OpClass::Store;
}

/** @return a short printable mnemonic. */
const char *opClassName(OpClass op);

} // namespace ebcp

#endif // EBCP_CPU_OP_CLASS_HH
