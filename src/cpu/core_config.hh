/**
 * @file
 * Core pipeline configuration; defaults reproduce Section 4.4.
 */

#ifndef EBCP_CPU_CORE_CONFIG_HH
#define EBCP_CPU_CORE_CONFIG_HH

#include "cpu/branch_predictor.hh"
#include "util/types.hh"

namespace ebcp
{

/** Out-of-order core parameters. */
struct CoreConfig
{
    unsigned fetchWidth = 4;
    unsigned decodeWidth = 4;
    unsigned retireWidth = 4;

    unsigned robEntries = 128;
    unsigned issueQueueEntries = 64;
    unsigned storeBufferEntries = 32;
    unsigned loadBufferEntries = 64;

    unsigned numAlus = 2;
    unsigned numLoadStoreUnits = 1;
    unsigned numBranchUnits = 1;
    unsigned numFpAddUnits = 1;
    unsigned numFpMulUnits = 1;

    /** Redirect penalty after a mispredicted branch resolves. */
    Tick mispredictPenalty = 9;

    BranchPredictorConfig branchPred;
};

} // namespace ebcp

#endif // EBCP_CPU_CORE_CONFIG_HH
