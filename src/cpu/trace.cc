#include "cpu/trace.hh"

#include "ckpt/archiver.hh"

namespace ebcp
{

void
TraceSource::ckpt(ckpt::Archiver &ar)
{
    ar.fail(invalidArgError(
        "this trace source is not checkpointable; drive the run from "
        "the start instead of restoring mid-stream"));
}

void
ckptRecord(ckpt::Archiver &ar, TraceRecord &rec)
{
    ar.u64(rec.pc);
    ar.u64(rec.addr);
    ar.enum32(rec.op);
    ar.u8(rec.dstReg);
    ar.u8(rec.srcReg0);
    ar.u8(rec.srcReg1);
    ar.boolean(rec.taken);
    ar.u64(rec.target);
    // An archive written by a healthy run only holds records the
    // sources already sanitized; clamp again on load so a corrupt
    // payload that survived the CRC cannot feed the timing model
    // out-of-range indices.
    if (!ar.saving() && ar.ok())
        sanitizeRecord(rec);
}

} // namespace ebcp
