#include "cpu/branch_predictor.hh"

#include <algorithm>

#include "ckpt/archiver.hh"
#include "util/bitfield.hh"
#include "util/logging.hh"

namespace ebcp
{

BranchPredictor::BranchPredictor(const BranchPredictorConfig &cfg)
    : cfg_(cfg),
      counters_(cfg.gshareEntries, 1), // weakly not-taken
      btbTargets_(cfg.btbEntries, 0),
      btbTags_(cfg.btbEntries, InvalidAddr),
      ras_(cfg.rasEntries, 0),
      stats_("branch_pred")
{
    fatal_if(!isPowerOf2(cfg.gshareEntries), "gshare size not power of 2");
    fatal_if(!isPowerOf2(cfg.btbEntries), "BTB size not power of 2");
    stats_.add(lookups_);
    stats_.add(mispredicts_);
    stats_.add(btbMisses_);
    stats_.add(rasCorrect_);
}

bool
BranchPredictor::predict(Addr pc, OpClass op, bool taken, Addr target)
{
    ++lookups_;
    bool correct = true;

    if (op == OpClass::Return) {
        // Pop the RAS and compare.
        rasTop_ = rasTop_ == 0 ? cfg_.rasEntries - 1 : rasTop_ - 1;
        if (ras_[rasTop_] == target)
            ++rasCorrect_;
        else
            correct = false;
    } else {
        // gshare direction prediction.
        const std::size_t idx =
            ((pc >> 2) ^ history_) & (cfg_.gshareEntries - 1);
        const bool pred_taken = counters_[idx] >= 2;
        if (pred_taken != taken)
            correct = false;

        // Update the 2-bit counter and global history.
        if (taken && counters_[idx] < 3)
            ++counters_[idx];
        else if (!taken && counters_[idx] > 0)
            --counters_[idx];
        history_ = ((history_ << 1) | (taken ? 1 : 0)) &
                   (cfg_.gshareEntries - 1);

        // Target prediction through the BTB for taken branches.
        if (taken) {
            const std::size_t b = (pc >> 2) & (cfg_.btbEntries - 1);
            if (btbTags_[b] != pc || btbTargets_[b] != target) {
                if (pred_taken) {
                    // Direction was right but the target was unknown
                    // or stale: still a redirect.
                    ++btbMisses_;
                    correct = false;
                }
                btbTags_[b] = pc;
                btbTargets_[b] = target;
            }
        }

        if (op == OpClass::Call) {
            // Push the fall-through address.
            ras_[rasTop_] = pc + 4;
            if (++rasTop_ == cfg_.rasEntries)
                rasTop_ = 0;
        }
    }

    if (!correct)
        ++mispredicts_;
    return correct;
}

void
BranchPredictor::reset()
{
    std::fill(counters_.begin(), counters_.end(), 1);
    std::fill(btbTags_.begin(), btbTags_.end(), InvalidAddr);
    std::fill(ras_.begin(), ras_.end(), 0);
    history_ = 0;
    rasTop_ = 0;
}


void
BranchPredictor::ckpt(ckpt::Archiver &ar)
{
    ar.fixedVec(counters_, [](ckpt::Archiver &a, std::uint8_t &c) {
        a.u8(c);
    }, "gshare counters");
    ar.fixedVecU64(btbTargets_, "BTB targets");
    ar.fixedVecU64(btbTags_, "BTB tags");
    ar.fixedVecU64(ras_, "RAS");
    ar.cursor(rasTop_, ras_.size(), "RAS");
    ar.u64(history_);
    stats_.ckpt(ar);
}

} // namespace ebcp
