/**
 * @file
 * Branch prediction: gshare direction predictor + BTB + return
 * address stack, per the paper's front-end configuration (64K-entry
 * gshare, 4K-entry BTB, 16-entry RAS).
 */

#ifndef EBCP_CPU_BRANCH_PREDICTOR_HH
#define EBCP_CPU_BRANCH_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "cpu/op_class.hh"
#include "stats/group.hh"
#include "util/types.hh"

namespace ebcp
{

namespace ckpt
{
class Archiver;
}

/** Configuration of the branch prediction structures. */
struct BranchPredictorConfig
{
    unsigned gshareEntries = 64 * 1024;
    unsigned btbEntries = 4 * 1024;
    unsigned rasEntries = 16;
};

/** Front-end branch predictor. */
class BranchPredictor
{
  public:
    explicit BranchPredictor(const BranchPredictorConfig &cfg = {});

    /**
     * Predict and update for a control instruction.
     *
     * @param pc branch PC
     * @param op control class (Branch / Call / Return)
     * @param taken actual direction
     * @param target actual target
     * @return true if the prediction (direction and target) was correct
     */
    bool predict(Addr pc, OpClass op, bool taken, Addr target);

    std::uint64_t mispredicts() const { return mispredicts_.value(); }
    std::uint64_t lookups() const { return lookups_.value(); }

    /** Forget all learned state. */
    void reset();

    StatGroup &stats() { return stats_; }

    /** Serialize or restore all learned state (checkpointing). */
    void ckpt(ckpt::Archiver &ar);

  private:
    BranchPredictorConfig cfg_;
    std::vector<std::uint8_t> counters_; //!< 2-bit saturating counters
    std::vector<Addr> btbTargets_;
    std::vector<Addr> btbTags_;
    std::vector<Addr> ras_;
    unsigned rasTop_ = 0;
    std::uint64_t history_ = 0;

    StatGroup stats_;
    Scalar lookups_{"lookups", "control instructions predicted"};
    Scalar mispredicts_{"mispredicts", "direction or target mispredicts"};
    Scalar btbMisses_{"btb_misses", "taken branches missing in the BTB"};
    Scalar rasCorrect_{"ras_correct", "returns predicted by the RAS"};
};

} // namespace ebcp

#endif // EBCP_CPU_BRANCH_PREDICTOR_HH
