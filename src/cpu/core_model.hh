/**
 * @file
 * One-pass out-of-order core timing model.
 *
 * Each dynamic instruction is assigned fetch / dispatch / issue /
 * complete / retire ticks in a single pass over the trace. The model
 * captures exactly the mechanisms the epoch MLP model (Section 2.1)
 * depends on:
 *
 *  - off-chip misses overlap only within the instruction window
 *    (ROB / issue-queue / store-buffer capacity constraints),
 *  - register dependences serialize dependent misses (pointer chasing
 *    yields one miss per epoch; independent scans yield several),
 *  - the paper's window-termination conditions all emerge naturally:
 *    ROB/IQ full, serializing instructions, mispredicted branches that
 *    depend on an off-chip miss, and off-chip instruction misses.
 *
 * The style of model (interval / one-pass) trades cycle-exactness for
 * speed; relative prefetcher behaviour -- which misses overlap, how
 * many epochs execution splits into -- is preserved.
 */

#ifndef EBCP_CPU_CORE_MODEL_HH
#define EBCP_CPU_CORE_MODEL_HH

#include <array>
#include <chrono>
#include <vector>

#include "cpu/branch_predictor.hh"
#include "cpu/core_config.hh"
#include "cpu/mem_iface.hh"
#include "cpu/trace.hh"
#include "cpu/width_limiter.hh"
#include "stats/group.hh"

namespace ebcp
{

namespace ckpt
{
class Archiver;
}

class AuditContext;
class Auditor;

/** Timing assigned to one instruction (exposed for tests). */
struct InstTiming
{
    Tick fetch = 0;
    Tick dispatch = 0;
    Tick issue = 0;
    Tick complete = 0;
    Tick retire = 0;
    bool offChip = false;
};

/** The out-of-order core. */
class CoreModel
{
  public:
    CoreModel(const CoreConfig &cfg, MemSystem &mem);

    /** Process one instruction; @return its timing. */
    InstTiming process(const TraceRecord &rec);

    /** Run @p count instructions from @p src. With a wall deadline
     * armed, execution proceeds in ~8k-instruction chunks with a
     * clock check between chunks; otherwise it is a single
     * uninterrupted pass with zero deadline cost. */
    void run(TraceSource &src, std::uint64_t count);

    /**
     * Mark the end of warm-up: subsequent CPI queries report only the
     * instructions processed after this call.
     */
    void beginMeasurement();

    /** Instructions processed since beginMeasurement(). */
    std::uint64_t measuredInsts() const { return insts_ - instMark_; }

    /** Cycles elapsed since beginMeasurement(). */
    Tick
    measuredCycles() const
    {
        return lastRetire_ > tickMark_ ? lastRetire_ - tickMark_ : 0;
    }

    /** Overall CPI of the measurement window. */
    double
    cpi() const
    {
        return measuredInsts()
                   ? static_cast<double>(measuredCycles()) / measuredInsts()
                   : 0.0;
    }

    Tick now() const { return lastRetire_; }
    std::uint64_t instCount() const { return insts_; }

    /**
     * Arm the forward-progress watchdog: run() stops (and
     * watchdogTripped() turns true) once consecutive retirements are
     * more than @p max_retire_gap ticks apart. In this one-pass model
     * every instruction retires eventually, so a liveness bug in the
     * timing machinery (leaked MSHR, wedged channel) manifests as an
     * unbounded tick jump between retirements -- exactly what this
     * detects. 0 disables.
     */
    void setWatchdog(Tick max_retire_gap)
    {
        watchdogLimit_ = max_retire_gap;
    }

    bool watchdogTripped() const { return watchdogTripped_; }

    /** The retire gap that tripped the watchdog. */
    Tick watchdogGap() const { return watchdogGap_; }

    /** Wall-clock seconds inside the run() call that tripped. */
    double watchdogWallSeconds() const { return watchdogWallSeconds_; }

    /**
     * Arm an absolute wall-clock deadline. Once it passes, run()
     * stops through the watchdog-trip path (watchdogTripped() turns
     * true with a zero gap and wallDeadlineTripped() set), so the
     * caller gets the same Stalled status + diagnostic a liveness
     * failure would produce. The check runs once every few thousand
     * instructions, so an unarmed deadline costs nothing and an armed
     * one costs one clock read per ~8k instructions. Run-scoped like
     * watchdog arming: not part of checkpointed state.
     */
    void
    setWallDeadline(std::chrono::steady_clock::time_point deadline)
    {
        wallDeadline_ = deadline;
        wallDeadlineArmed_ = true;
    }

    void clearWallDeadline() { wallDeadlineArmed_ = false; }

    /** True when the last trip came from the wall deadline, not a
     * retire gap. */
    bool wallDeadlineTripped() const { return wallDeadlineTripped_; }

    /** ROB entries retiring after tick @p t (watchdog diagnostics:
     * pass the last healthy retire tick to see what was in flight
     * across the stall). */
    unsigned robOccupancyAfter(Tick t) const;

    BranchPredictor &branchPredictor() { return bp_; }
    StatGroup &stats() { return stats_; }

    /**
     * Attach the invariant auditor. When set, run() fires the
     * retire-cadence hook after each instruction and screens each
     * trace record with recordAuditError(). Audit-disabled builds
     * compile both out; a null pointer is always legal.
     */
    void setAuditor(Auditor *aud) { auditor_ = aud; }

    /** Records flagged by recordAuditError() (auditor attached). */
    std::uint64_t malformedRecords() const { return malformedRecords_; }

    /**
     * Re-derive window invariants from the retirement state: the ROB
     * ring is age-ordered up to its newest entry (== the last retire,
     * which nothing in flight may outlive), the ring cursors agree
     * with the dispatch sequence numbers, and no screened trace record
     * was malformed.
     */
    void audit(AuditContext &ctx) const;

    /** Test-only: break ROB age order so audit() trips. */
    void corruptForTest();

    /** Serialize or restore all mutable timing state (checkpointing).
     * Watchdog arming and the attached auditor are run-scoped, not
     * state, and are left alone. */
    void ckpt(ckpt::Archiver &ar);

  private:
    /** Wrap a ring cursor (cheaper than % on a runtime size). */
    static std::size_t
    bump(std::size_t i, std::size_t size)
    {
        return ++i == size ? 0 : i;
    }

    CoreConfig cfg_;
    MemSystem &mem_;
    Addr lineBytes_; //!< cached mem_.lineBytes() (virtual call)
    BranchPredictor bp_;

    // Per-architectural-register ready times.
    std::array<Tick, NumArchRegs> regReady_{};

    // Window resources, as rings of the tick at which entry (i - size)
    // frees. The *Idx_ cursors track seq % size without the per-
    // instruction division.
    std::vector<Tick> robRetire_;
    std::vector<Tick> iqIssue_;
    std::vector<Tick> sbDrain_;
    std::vector<Tick> lbComplete_;
    std::size_t robIdx_ = 0;
    std::size_t iqIdx_ = 0;
    std::size_t sbIdx_ = 0;
    std::size_t lbIdx_ = 0;
    std::uint64_t seq_ = 0;      //!< dispatched instruction count
    std::uint64_t storeSeq_ = 0; //!< dispatched store count
    std::uint64_t loadSeq_ = 0;  //!< dispatched load count

    WidthLimiter fetchLim_;
    WidthLimiter dispatchLim_;
    WidthLimiter retireLim_;
    WidthLimiter aluLim_;
    WidthLimiter lsuLim_;
    WidthLimiter brLim_;
    WidthLimiter fpAddLim_;
    WidthLimiter fpMulLim_;

    // Fetch state.
    Addr fetchLine_ = InvalidAddr;
    Tick fetchLineReady_ = 0;
    Tick fetchResume_ = 0; //!< earliest fetch after redirects/stalls

    Tick lastRetire_ = 0;
    Tick serializeBarrier_ = 0; //!< dispatch floor after a serializer

    std::uint64_t insts_ = 0;
    std::uint64_t instMark_ = 0;
    Tick tickMark_ = 0;

    Tick watchdogLimit_ = 0; //!< max retire-to-retire gap; 0 = off
    Tick watchdogGap_ = 0;
    bool watchdogTripped_ = false;
    double watchdogWallSeconds_ = 0.0;

    /** The deadline-free retirement loop behind run(). */
    void runBounded(TraceSource &src, std::uint64_t count);

    std::chrono::steady_clock::time_point wallDeadline_{};
    bool wallDeadlineArmed_ = false;
    bool wallDeadlineTripped_ = false;

    Auditor *auditor_ = nullptr;
    std::uint64_t malformedRecords_ = 0;

    StatGroup stats_;
    Scalar loads_{"loads", "load instructions"};
    Scalar stores_{"stores", "store instructions"};
    Scalar branches_{"branches", "control instructions"};
    Scalar offChipLoads_{"offchip_loads", "loads serviced off chip"};
    Scalar offChipFetches_{"offchip_fetches",
                           "instruction lines fetched off chip"};
    Scalar serializers_{"serializers", "serializing instructions"};
};

} // namespace ebcp

#endif // EBCP_CPU_CORE_MODEL_HH
