#include "cpu/core_model.hh"

#include <algorithm>
#include <chrono>

#include "ckpt/containers.hh"
#include "cpu/decode_ahead.hh"
#include "util/bitfield.hh"
#include "util/profiler.hh"
#include "verify/audit.hh"

namespace ebcp
{

CoreModel::CoreModel(const CoreConfig &cfg, MemSystem &mem)
    : cfg_(cfg), mem_(mem), lineBytes_(mem.lineBytes()),
      bp_(cfg.branchPred),
      robRetire_(cfg.robEntries, 0),
      iqIssue_(cfg.issueQueueEntries, 0),
      sbDrain_(cfg.storeBufferEntries, 0),
      lbComplete_(cfg.loadBufferEntries, 0),
      fetchLim_(cfg.fetchWidth),
      dispatchLim_(cfg.decodeWidth),
      retireLim_(cfg.retireWidth),
      aluLim_(cfg.numAlus),
      lsuLim_(cfg.numLoadStoreUnits),
      brLim_(cfg.numBranchUnits),
      fpAddLim_(cfg.numFpAddUnits),
      fpMulLim_(cfg.numFpMulUnits),
      stats_("core")
{
    stats_.add(loads_);
    stats_.add(stores_);
    stats_.add(branches_);
    stats_.add(offChipLoads_);
    stats_.add(offChipFetches_);
    stats_.add(serializers_);
    stats_.addChild(bp_.stats());
}

InstTiming
CoreModel::process(const TraceRecord &rec)
{
    InstTiming t;

    // ------------------------------------------------------------------
    // Fetch: a new cache line is requested from the memory system; an
    // off-chip instruction miss stalls fetch entirely (window
    // termination condition).
    // ------------------------------------------------------------------
    const Addr line = alignDown(rec.pc, lineBytes_);
    if (line != fetchLine_) {
        MemOutcome o = mem_.fetchInst(rec.pc, std::max(fetchResume_,
                                                       fetchLineReady_));
        fetchLine_ = line;
        fetchLineReady_ = o.complete;
        if (o.offChip)
            ++offChipFetches_;
    }
    t.fetch = fetchLim_.next(std::max(fetchResume_, fetchLineReady_));

    // ------------------------------------------------------------------
    // Dispatch: bounded by ROB, issue queue, load/store buffers and a
    // pending serialization barrier.
    // ------------------------------------------------------------------
    Tick d = std::max(t.fetch, serializeBarrier_);
    d = std::max(d, robRetire_[robIdx_]);
    d = std::max(d, iqIssue_[iqIdx_]);
    if (rec.op == OpClass::Store)
        d = std::max(d, sbDrain_[sbIdx_]);
    if (rec.op == OpClass::Load)
        d = std::max(d, lbComplete_[lbIdx_]);
    if (rec.op == OpClass::Serialize) {
        // Serializers wait for the whole window to drain.
        d = std::max(d, lastRetire_);
        ++serializers_;
    }
    t.dispatch = dispatchLim_.next(d);

    // ------------------------------------------------------------------
    // Issue + execute.
    // ------------------------------------------------------------------
    // The < NumArchRegs bound subsumes the != NoReg check and also
    // shields the array from out-of-range register ids in records
    // from untrusted sources (corrupt traces, fault injection).
    Tick ready = t.dispatch;
    if (rec.srcReg0 < NumArchRegs)
        ready = std::max(ready, regReady_[rec.srcReg0]);
    if (rec.srcReg1 < NumArchRegs)
        ready = std::max(ready, regReady_[rec.srcReg1]);

    switch (rec.op) {
      case OpClass::Load: {
        t.issue = lsuLim_.next(ready);
        MemOutcome o = mem_.load(rec.addr, rec.pc, t.issue);
        t.complete = o.complete;
        t.offChip = o.offChip;
        ++loads_;
        if (o.offChip)
            ++offChipLoads_;
        lbComplete_[lbIdx_] = t.complete;
        lbIdx_ = bump(lbIdx_, lbComplete_.size());
        ++loadSeq_;
        break;
      }
      case OpClass::Store:
        // Address generation only; the store drains post-retire under
        // weak consistency.
        t.issue = lsuLim_.next(ready);
        t.complete = t.issue + 1;
        ++stores_;
        break;
      case OpClass::Branch:
      case OpClass::Call:
      case OpClass::Return: {
        t.issue = brLim_.next(ready);
        t.complete = t.issue + opLatency(rec.op);
        ++branches_;
        const bool correct =
            bp_.predict(rec.pc, rec.op, rec.taken, rec.target);
        if (!correct) {
            // Fetch restarts after the branch resolves; a branch fed
            // by an off-chip load thus terminates the window.
            fetchResume_ = std::max(fetchResume_,
                                    t.complete + cfg_.mispredictPenalty);
        }
        break;
      }
      case OpClass::FpAdd:
        t.issue = fpAddLim_.next(ready);
        t.complete = t.issue + opLatency(rec.op);
        break;
      case OpClass::FpMul:
        t.issue = fpMulLim_.next(ready);
        t.complete = t.issue + opLatency(rec.op);
        break;
      case OpClass::IntAlu:
        t.issue = aluLim_.next(ready);
        t.complete = t.issue + opLatency(rec.op);
        break;
      case OpClass::Serialize:
      case OpClass::Nop:
        t.issue = ready;
        t.complete = t.issue + 1;
        break;
    }

    if (rec.dstReg < NumArchRegs)
        regReady_[rec.dstReg] = t.complete;

    // ------------------------------------------------------------------
    // Retire: in order, bounded by retire width.
    // ------------------------------------------------------------------
    t.retire = retireLim_.next(std::max(t.complete, lastRetire_));
    lastRetire_ = t.retire;

    robRetire_[robIdx_] = t.retire;
    iqIssue_[iqIdx_] = t.issue;
    robIdx_ = bump(robIdx_, robRetire_.size());
    iqIdx_ = bump(iqIdx_, iqIssue_.size());
    ++seq_;

    if (rec.op == OpClass::Store) {
        sbDrain_[sbIdx_] = mem_.store(rec.addr, t.retire);
        sbIdx_ = bump(sbIdx_, sbDrain_.size());
        ++storeSeq_;
    }
    if (rec.op == OpClass::Serialize)
        serializeBarrier_ = t.retire;

    ++insts_;
    return t;
}

void
CoreModel::run(TraceSource &src, std::uint64_t count)
{
    EBCP_PROFILE_SCOPE(CoreLoop);
    if (!wallDeadlineArmed_) {
        runBounded(src, count);
        return;
    }
    // Chunked execution keeps the deadline entirely off the hot
    // retirement loop: one clock read per chunk, and a run with no
    // deadline armed takes the plain path above at zero cost (the
    // perf-smoke bench enforces <1% with the deadline armed).
    constexpr std::uint64_t kDeadlineChunk = 8192;
    const auto wall_start = std::chrono::steady_clock::now();
    std::uint64_t remaining = count;
    while (remaining > 0) {
        const std::uint64_t chunk =
            std::min(kDeadlineChunk, remaining);
        const std::uint64_t before = insts_;
        runBounded(src, chunk);
        const std::uint64_t done = insts_ - before;
        remaining -= std::min(done, remaining);
        if (watchdogTripped_ || done < chunk)
            return; // tripped, or the source ran dry
        const auto now = std::chrono::steady_clock::now();
        if (now >= wallDeadline_) {
            watchdogTripped_ = true;
            wallDeadlineTripped_ = true;
            watchdogGap_ = 0;
            watchdogWallSeconds_ =
                std::chrono::duration<double>(now - wall_start)
                    .count();
            return;
        }
    }
}

void
CoreModel::runBounded(TraceSource &src, std::uint64_t count)
{
    // Records arrive through the decode-ahead pipe: trace decode runs
    // ahead of the retirement loop (a producer thread on multi-core
    // hosts, an inline chunk refill otherwise) and the loop reads the
    // chunk memory directly -- no per-record copy. The pipe never
    // over-pulls: over its lifetime it requests exactly `count`
    // records, so the source is left positioned as if records had
    // been pulled one at a time (except after a watchdog trip, where
    // the run is abandoned).
    DecodeAhead pipe(src, count);
    Tick prev_retire = lastRetire_;
    std::uint64_t remaining = count;
    // One clock read per run() call (and one more on a trip), never
    // per instruction: the wall-clock context in watchdog dumps must
    // not slow the retirement loop.
    const auto wall_start = std::chrono::steady_clock::now();
    while (remaining > 0) {
        const TraceRecord *batch = nullptr;
        const std::size_t got = pipe.acquire(
            &batch, static_cast<std::size_t>(std::min<std::uint64_t>(
                        remaining, ~std::size_t{0})));
        for (std::size_t i = 0; i < got; ++i) {
#if EBCP_AUDIT_ENABLED
            // Screen the raw record before it shapes any timing: a
            // malformed one is evidence of corruption upstream of the
            // core, surfaced by audit() rather than a crash here.
            if (auditor_ && recordAuditError(batch[i]))
                ++malformedRecords_;
#endif
            const InstTiming t = process(batch[i]);
            if (watchdogLimit_ &&
                t.retire > prev_retire + watchdogLimit_) {
                watchdogTripped_ = true;
                watchdogGap_ = t.retire - prev_retire;
                watchdogWallSeconds_ =
                    std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - wall_start)
                        .count();
                return;
            }
            prev_retire = t.retire;
            EBCP_AUDIT_RETIRE(auditor_, t.retire);
#if EBCP_AUDIT_ENABLED
            // Under the abort policy a failed pass ends the run here;
            // the driver turns the auditor's state into a Status.
            if (auditor_ && auditor_->abortRequested())
                return;
#endif
        }
        pipe.consume(got);
        remaining -= got;
        if (got == 0)
            return; // the source ran dry
    }
}

unsigned
CoreModel::robOccupancyAfter(Tick t) const
{
    const std::uint64_t valid =
        std::min<std::uint64_t>(seq_, cfg_.robEntries);
    unsigned busy = 0;
    for (std::uint64_t i = 0; i < valid; ++i)
        if (robRetire_[i] > t)
            ++busy;
    return busy;
}

void
CoreModel::audit(AuditContext &ctx) const
{
    // The ROB ring holds the retire ticks of the last |ROB| dispatched
    // instructions; retirement is in order, so walking it oldest to
    // newest must never go backwards, and the newest entry is the last
    // retirement -- which nothing still tracked may outlive.
    const std::size_t size = robRetire_.size();
    const std::uint64_t valid = std::min<std::uint64_t>(seq_, size);
    if (valid > 0) {
        const std::size_t oldest = seq_ >= size ? robIdx_ : 0;
        bool ordered = true;
        Tick prev = 0;
        for (std::uint64_t k = 0; k < valid; ++k) {
            const Tick r = robRetire_[(oldest + k) % size];
            if (r < prev) {
                ordered = false;
                break;
            }
            prev = r;
        }
        ctx.check(ordered, "rob_age_ordered",
                  "ROB retire times decrease oldest to newest");
        const Tick newest = robRetire_[(oldest + valid - 1) % size];
        ctx.check(newest == lastRetire_, "rob_newest_is_last_retire",
                  "newest ROB entry retires at ", newest,
                  " but the last retirement was ", lastRetire_);
        ctx.check(robOccupancyAfter(lastRetire_) == 0,
                  "no_inst_outlives_last_retire",
                  robOccupancyAfter(lastRetire_),
                  " ROB entries retire after the last retirement");
    }

    // Ring cursors are sequence counters folded by the ring size; a
    // divergence means an entry was skipped or double-counted.
    ctx.check(robIdx_ == seq_ % robRetire_.size(), "rob_cursor_consistent",
              "ROB cursor ", robIdx_, " vs seq ", seq_);
    ctx.check(iqIdx_ == seq_ % iqIssue_.size(), "iq_cursor_consistent",
              "IQ cursor ", iqIdx_, " vs seq ", seq_);
    ctx.check(sbIdx_ == storeSeq_ % sbDrain_.size(), "sb_cursor_consistent",
              "store-buffer cursor ", sbIdx_, " vs store seq ", storeSeq_);
    ctx.check(lbIdx_ == loadSeq_ % lbComplete_.size(), "lb_cursor_consistent",
              "load-buffer cursor ", lbIdx_, " vs load seq ", loadSeq_);
    ctx.check(seq_ == insts_, "dispatch_matches_inst_count",
              seq_, " dispatches vs ", insts_, " instructions");
    ctx.check(storeSeq_ + loadSeq_ <= seq_, "mem_ops_within_dispatches",
              storeSeq_ + loadSeq_, " memory ops vs ", seq_, " dispatches");

    ctx.check(malformedRecords_ == 0, "trace_records_well_formed",
              malformedRecords_, " malformed trace records screened");
}

void
CoreModel::corruptForTest()
{
    if (seq_ == 0) {
        // Fabricate a lone instruction whose retirement is in the
        // future relative to lastRetire_.
        robRetire_[0] = lastRetire_ + 1000;
        iqIssue_[0] = lastRetire_ + 1000;
        seq_ = 1;
        insts_ = 1;
        robIdx_ = bump(robIdx_, robRetire_.size());
        iqIdx_ = bump(iqIdx_, iqIssue_.size());
    } else {
        // Push the newest live entry far past the last retirement:
        // breaks the newest==lastRetire_ tie and leaves an entry that
        // outlives every near-term retirement. The newest slot is the
        // last to be overwritten by subsequent dispatches, so the
        // damage also survives long enough for a cadenced mid-run
        // audit to observe it (the oldest slot, being the insertion
        // cursor, would be erased by the very next instruction).
        const std::size_t size = robRetire_.size();
        const std::size_t newest = (robIdx_ + size - 1) % size;
        robRetire_[newest] = lastRetire_ + 10'000'000;
    }
}

void
CoreModel::beginMeasurement()
{
    instMark_ = insts_;
    tickMark_ = lastRetire_;
    stats_.resetAll();
}


void
CoreModel::ckpt(ckpt::Archiver &ar)
{
    for (Tick &t : regReady_)
        ar.u64(t);
    ar.fixedVecU64(robRetire_, "ROB ring");
    ar.fixedVecU64(iqIssue_, "issue queue ring");
    ar.fixedVecU64(sbDrain_, "store buffer ring");
    ar.fixedVecU64(lbComplete_, "load buffer ring");
    ar.cursor(robIdx_, robRetire_.size(), "ROB");
    ar.cursor(iqIdx_, iqIssue_.size(), "issue queue");
    ar.cursor(sbIdx_, sbDrain_.size(), "store buffer");
    ar.cursor(lbIdx_, lbComplete_.size(), "load buffer");
    ar.u64(seq_);
    ar.u64(storeSeq_);
    ar.u64(loadSeq_);
    for (WidthLimiter *lim :
         {&fetchLim_, &dispatchLim_, &retireLim_, &aluLim_, &lsuLim_,
          &brLim_, &fpAddLim_, &fpMulLim_}) {
        Tick cur = lim->cur();
        unsigned used = lim->used();
        ar.u64(cur);
        ar.uns(used);
        if (!ar.saving() && ar.ok())
            lim->setState(cur, used);
    }
    ar.u64(fetchLine_);
    ar.u64(fetchLineReady_);
    ar.u64(fetchResume_);
    ar.u64(lastRetire_);
    ar.u64(serializeBarrier_);
    ar.u64(insts_);
    ar.u64(instMark_);
    ar.u64(tickMark_);
    ar.u64(malformedRecords_);
    bp_.ckpt(ar);
    stats_.ckpt(ar);
}

} // namespace ebcp
