#include "cpu/core_model.hh"

#include <algorithm>
#include <chrono>

#include "util/bitfield.hh"

namespace ebcp
{

CoreModel::CoreModel(const CoreConfig &cfg, MemSystem &mem)
    : cfg_(cfg), mem_(mem), lineBytes_(mem.lineBytes()),
      bp_(cfg.branchPred),
      robRetire_(cfg.robEntries, 0),
      iqIssue_(cfg.issueQueueEntries, 0),
      sbDrain_(cfg.storeBufferEntries, 0),
      lbComplete_(cfg.loadBufferEntries, 0),
      fetchLim_(cfg.fetchWidth),
      dispatchLim_(cfg.decodeWidth),
      retireLim_(cfg.retireWidth),
      aluLim_(cfg.numAlus),
      lsuLim_(cfg.numLoadStoreUnits),
      brLim_(cfg.numBranchUnits),
      fpAddLim_(cfg.numFpAddUnits),
      fpMulLim_(cfg.numFpMulUnits),
      stats_("core")
{
    stats_.add(loads_);
    stats_.add(stores_);
    stats_.add(branches_);
    stats_.add(offChipLoads_);
    stats_.add(offChipFetches_);
    stats_.add(serializers_);
    stats_.addChild(bp_.stats());
}

InstTiming
CoreModel::process(const TraceRecord &rec)
{
    InstTiming t;

    // ------------------------------------------------------------------
    // Fetch: a new cache line is requested from the memory system; an
    // off-chip instruction miss stalls fetch entirely (window
    // termination condition).
    // ------------------------------------------------------------------
    const Addr line = alignDown(rec.pc, lineBytes_);
    if (line != fetchLine_) {
        MemOutcome o = mem_.fetchInst(rec.pc, std::max(fetchResume_,
                                                       fetchLineReady_));
        fetchLine_ = line;
        fetchLineReady_ = o.complete;
        if (o.offChip)
            ++offChipFetches_;
    }
    t.fetch = fetchLim_.next(std::max(fetchResume_, fetchLineReady_));

    // ------------------------------------------------------------------
    // Dispatch: bounded by ROB, issue queue, load/store buffers and a
    // pending serialization barrier.
    // ------------------------------------------------------------------
    Tick d = std::max(t.fetch, serializeBarrier_);
    d = std::max(d, robRetire_[robIdx_]);
    d = std::max(d, iqIssue_[iqIdx_]);
    if (rec.op == OpClass::Store)
        d = std::max(d, sbDrain_[sbIdx_]);
    if (rec.op == OpClass::Load)
        d = std::max(d, lbComplete_[lbIdx_]);
    if (rec.op == OpClass::Serialize) {
        // Serializers wait for the whole window to drain.
        d = std::max(d, lastRetire_);
        ++serializers_;
    }
    t.dispatch = dispatchLim_.next(d);

    // ------------------------------------------------------------------
    // Issue + execute.
    // ------------------------------------------------------------------
    // The < NumArchRegs bound subsumes the != NoReg check and also
    // shields the array from out-of-range register ids in records
    // from untrusted sources (corrupt traces, fault injection).
    Tick ready = t.dispatch;
    if (rec.srcReg0 < NumArchRegs)
        ready = std::max(ready, regReady_[rec.srcReg0]);
    if (rec.srcReg1 < NumArchRegs)
        ready = std::max(ready, regReady_[rec.srcReg1]);

    switch (rec.op) {
      case OpClass::Load: {
        t.issue = lsuLim_.next(ready);
        MemOutcome o = mem_.load(rec.addr, rec.pc, t.issue);
        t.complete = o.complete;
        t.offChip = o.offChip;
        ++loads_;
        if (o.offChip)
            ++offChipLoads_;
        lbComplete_[lbIdx_] = t.complete;
        lbIdx_ = bump(lbIdx_, lbComplete_.size());
        ++loadSeq_;
        break;
      }
      case OpClass::Store:
        // Address generation only; the store drains post-retire under
        // weak consistency.
        t.issue = lsuLim_.next(ready);
        t.complete = t.issue + 1;
        ++stores_;
        break;
      case OpClass::Branch:
      case OpClass::Call:
      case OpClass::Return: {
        t.issue = brLim_.next(ready);
        t.complete = t.issue + opLatency(rec.op);
        ++branches_;
        const bool correct =
            bp_.predict(rec.pc, rec.op, rec.taken, rec.target);
        if (!correct) {
            // Fetch restarts after the branch resolves; a branch fed
            // by an off-chip load thus terminates the window.
            fetchResume_ = std::max(fetchResume_,
                                    t.complete + cfg_.mispredictPenalty);
        }
        break;
      }
      case OpClass::FpAdd:
        t.issue = fpAddLim_.next(ready);
        t.complete = t.issue + opLatency(rec.op);
        break;
      case OpClass::FpMul:
        t.issue = fpMulLim_.next(ready);
        t.complete = t.issue + opLatency(rec.op);
        break;
      case OpClass::IntAlu:
        t.issue = aluLim_.next(ready);
        t.complete = t.issue + opLatency(rec.op);
        break;
      case OpClass::Serialize:
      case OpClass::Nop:
        t.issue = ready;
        t.complete = t.issue + 1;
        break;
    }

    if (rec.dstReg < NumArchRegs)
        regReady_[rec.dstReg] = t.complete;

    // ------------------------------------------------------------------
    // Retire: in order, bounded by retire width.
    // ------------------------------------------------------------------
    t.retire = retireLim_.next(std::max(t.complete, lastRetire_));
    lastRetire_ = t.retire;

    robRetire_[robIdx_] = t.retire;
    iqIssue_[iqIdx_] = t.issue;
    robIdx_ = bump(robIdx_, robRetire_.size());
    iqIdx_ = bump(iqIdx_, iqIssue_.size());
    ++seq_;

    if (rec.op == OpClass::Store) {
        sbDrain_[sbIdx_] = mem_.store(rec.addr, t.retire);
        sbIdx_ = bump(sbIdx_, sbDrain_.size());
        ++storeSeq_;
    }
    if (rec.op == OpClass::Serialize)
        serializeBarrier_ = t.retire;

    ++insts_;
    return t;
}

void
CoreModel::run(TraceSource &src, std::uint64_t count)
{
    // Pull records in batches so the source's virtual dispatch
    // amortizes over kRunBatch instructions. Never over-pull: the
    // last batch requests exactly the remaining count, so the source
    // is left positioned as if records had been pulled one at a time
    // (except after a watchdog trip, where the run is abandoned).
    constexpr std::size_t kRunBatch = 64;
    TraceRecord batch[kRunBatch];
    Tick prev_retire = lastRetire_;
    std::uint64_t remaining = count;
    // One clock read per run() call (and one more on a trip), never
    // per instruction: the wall-clock context in watchdog dumps must
    // not slow the retirement loop.
    const auto wall_start = std::chrono::steady_clock::now();
    while (remaining > 0) {
        const std::size_t want = static_cast<std::size_t>(
            std::min<std::uint64_t>(kRunBatch, remaining));
        const std::size_t got = src.nextBatch(batch, want);
        for (std::size_t i = 0; i < got; ++i) {
            const InstTiming t = process(batch[i]);
            if (watchdogLimit_ &&
                t.retire > prev_retire + watchdogLimit_) {
                watchdogTripped_ = true;
                watchdogGap_ = t.retire - prev_retire;
                watchdogWallSeconds_ =
                    std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - wall_start)
                        .count();
                return;
            }
            prev_retire = t.retire;
        }
        remaining -= got;
        if (got < want)
            return;
    }
}

unsigned
CoreModel::robOccupancyAfter(Tick t) const
{
    const std::uint64_t valid =
        std::min<std::uint64_t>(seq_, cfg_.robEntries);
    unsigned busy = 0;
    for (std::uint64_t i = 0; i < valid; ++i)
        if (robRetire_[i] > t)
            ++busy;
    return busy;
}

void
CoreModel::beginMeasurement()
{
    instMark_ = insts_;
    tickMark_ = lastRetire_;
    stats_.resetAll();
}

} // namespace ebcp
