#include "trace/trace_file.hh"

#include <cstring>

#include "ckpt/archiver.hh"
#include "util/crc32.hh"
#include "util/logging.hh"

namespace ebcp
{

namespace
{

constexpr char MagicV1[8] = {'E', 'B', 'C', 'P', 'T', 'R', 'C', '1'};
constexpr char MagicV2[8] = {'E', 'B', 'C', 'P', 'T', 'R', 'C', '2'};

/** On-disk record layout (little-endian, fixed 32 bytes). */
struct DiskRecord
{
    std::uint64_t pc;
    std::uint64_t addr;
    std::uint64_t target;
    std::uint8_t op;
    std::uint8_t dstReg;
    std::uint8_t srcReg0;
    std::uint8_t srcReg1;
    std::uint8_t taken;
    std::uint8_t pad[3];
};

static_assert(sizeof(DiskRecord) == 32, "trace record layout");

/** Per-chunk prefix: record count + CRC-32 of the packed records. */
struct ChunkHeader
{
    std::uint32_t count;
    std::uint32_t crc;
};

static_assert(sizeof(ChunkHeader) == 8, "chunk header layout");

/** Sanity bound on chunk_records: a chunk stays well under 32MB. */
constexpr unsigned MaxChunkRecords = 1u << 20;

DiskRecord
pack(const TraceRecord &r)
{
    DiskRecord d{};
    d.pc = r.pc;
    d.addr = r.addr;
    d.target = r.target;
    d.op = static_cast<std::uint8_t>(r.op);
    d.dstReg = r.dstReg;
    d.srcReg0 = r.srcReg0;
    d.srcReg1 = r.srcReg1;
    d.taken = r.taken ? 1 : 0;
    return d;
}

TraceRecord
unpack(const DiskRecord &d)
{
    TraceRecord r;
    r.pc = d.pc;
    r.addr = d.addr;
    r.target = d.target;
    r.op = static_cast<OpClass>(d.op);
    r.dstReg = d.dstReg;
    r.srcReg0 = d.srcReg0;
    r.srcReg1 = d.srcReg1;
    r.taken = d.taken != 0;
    return r;
}

} // namespace

StatusOr<TraceReadPolicy>
traceReadPolicyFromName(const std::string &name)
{
    if (name == "strict")
        return TraceReadPolicy::Strict;
    if (name == "skip-corrupt")
        return TraceReadPolicy::SkipCorrupt;
    if (name == "stop-at-corrupt")
        return TraceReadPolicy::StopAtCorrupt;
    return invalidArgError("unknown trace read policy '", name,
                           "' (expected strict/skip-corrupt/"
                           "stop-at-corrupt)");
}

// ---------------------------------------------------------------------
// TraceFileWriter
// ---------------------------------------------------------------------

StatusOr<std::unique_ptr<TraceFileWriter>>
TraceFileWriter::open(const std::string &path, unsigned chunk_records)
{
    if (chunk_records == 0 || chunk_records > MaxChunkRecords)
        return invalidArgError("trace chunk size ", chunk_records,
                               " out of range [1, ", MaxChunkRecords,
                               "]");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return ioError("cannot open trace file '", path,
                       "' for writing: ", errnoString());

    unsigned char header[24];
    std::memcpy(header, MagicV2, 8);
    const std::uint32_t version = 2;
    const std::uint32_t rec_size = sizeof(DiskRecord);
    const std::uint32_t chunk32 = chunk_records;
    std::memcpy(header + 8, &version, 4);
    std::memcpy(header + 12, &rec_size, 4);
    std::memcpy(header + 16, &chunk32, 4);
    const std::uint32_t hcrc = crc32(header, 20);
    std::memcpy(header + 20, &hcrc, 4);
    if (std::fwrite(header, sizeof(header), 1, f) != 1) {
        Status err = ioError("cannot write trace header to '", path,
                             "': ", errnoString());
        std::fclose(f);
        return err;
    }

    return std::unique_ptr<TraceFileWriter>(
        new TraceFileWriter(f, path, chunk_records));
}

TraceFileWriter::~TraceFileWriter()
{
    Status s = close();
    if (!s.ok())
        warn("closing trace file: ", s.toString());
}

Status
TraceFileWriter::flushChunk()
{
    if (chunk_.empty())
        return Status();
    ChunkHeader h;
    h.count =
        static_cast<std::uint32_t>(chunk_.size() / sizeof(DiskRecord));
    h.crc = crc32(chunk_.data(), chunk_.size());
    if (std::fwrite(&h, sizeof(h), 1, file_) != 1 ||
        std::fwrite(chunk_.data(), chunk_.size(), 1, file_) != 1)
        return ioError("short write to trace file '", path_,
                       "': ", errnoString());
    chunk_.clear();
    return Status();
}

Status
TraceFileWriter::write(const TraceRecord &rec)
{
    if (!file_)
        return ioError("write to a closed trace file '", path_, "'");
    const DiskRecord d = pack(rec);
    const auto *bytes = reinterpret_cast<const unsigned char *>(&d);
    chunk_.insert(chunk_.end(), bytes, bytes + sizeof(d));
    ++written_;
    if (chunk_.size() >= chunkRecords_ * sizeof(DiskRecord))
        return flushChunk();
    return Status();
}

Status
TraceFileWriter::capture(TraceSource &src, std::uint64_t count)
{
    TraceRecord rec;
    for (std::uint64_t i = 0; i < count && src.next(rec); ++i) {
        Status s = write(rec);
        if (!s.ok())
            return s;
    }
    return Status();
}

Status
TraceFileWriter::close()
{
    if (!file_)
        return Status();
    Status s = flushChunk();
    if (s.ok() && std::fflush(file_) != 0)
        s = ioError("cannot flush trace file '", path_,
                    "': ", errnoString());
    if (std::fclose(file_) != 0 && s.ok())
        s = ioError("cannot close trace file '", path_,
                    "': ", errnoString());
    file_ = nullptr;
    return s;
}

// ---------------------------------------------------------------------
// FileTraceSource
// ---------------------------------------------------------------------

StatusOr<std::unique_ptr<FileTraceSource>>
FileTraceSource::open(const std::string &path, bool loop,
                      TraceReadPolicy policy)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return ioError("cannot open trace file '", path,
                       "': ", errnoString());
    std::unique_ptr<FileTraceSource> src(
        new FileTraceSource(f, path, loop, policy));
    Status s = src->readHeader();
    if (!s.ok())
        return s.withContext("trace file '" + path + "'");
    return src;
}

Status
FileTraceSource::readHeader()
{
    char magic[8];
    if (std::fread(magic, sizeof(magic), 1, file_) != 1)
        return corruptionError("truncated header (not a trace file?)");
    if (std::memcmp(magic, MagicV2, sizeof(MagicV2)) == 0)
        version_ = 2;
    else if (std::memcmp(magic, MagicV1, sizeof(MagicV1)) == 0)
        version_ = 1;
    else
        return corruptionError("bad magic (not an EBCP trace file)");

    std::uint32_t version = 0;
    std::uint32_t rec_size = 0;
    if (std::fread(&version, sizeof(version), 1, file_) != 1 ||
        std::fread(&rec_size, sizeof(rec_size), 1, file_) != 1)
        return corruptionError("truncated header");
    if (version != version_)
        return corruptionError("header version field ", version,
                               " contradicts magic (v", version_, ")");
    if (rec_size != sizeof(DiskRecord))
        return corruptionError("record size ", rec_size,
                               " (expected ", sizeof(DiskRecord), ")");

    if (version_ == 2) {
        std::uint32_t chunk32 = 0;
        std::uint32_t hcrc = 0;
        if (std::fread(&chunk32, sizeof(chunk32), 1, file_) != 1 ||
            std::fread(&hcrc, sizeof(hcrc), 1, file_) != 1)
            return corruptionError("truncated header");
        unsigned char header[20];
        std::memcpy(header, MagicV2, 8);
        std::memcpy(header + 8, &version, 4);
        std::memcpy(header + 12, &rec_size, 4);
        std::memcpy(header + 16, &chunk32, 4);
        if (crc32(header, sizeof(header)) != hcrc)
            return corruptionError("header CRC mismatch");
        if (chunk32 == 0 || chunk32 > MaxChunkRecords)
            return corruptionError("chunk size ", chunk32,
                                   " out of range");
        chunkRecords_ = chunk32;
    }

    dataStart_ = std::ftell(file_);
    return Status();
}

FileTraceSource::~FileTraceSource()
{
    if (file_)
        std::fclose(file_);
}

bool
FileTraceSource::onCorrupt(const std::string &what)
{
    ++corruptChunks_;
    switch (policy_) {
      case TraceReadPolicy::Strict:
        status_ = corruptionError("trace file '", path_, "': ", what);
        ended_ = true;
        return false;
      case TraceReadPolicy::SkipCorrupt:
        return true;
      case TraceReadPolicy::StopAtCorrupt:
        ended_ = true;
        return false;
    }
    return false;
}

bool
FileTraceSource::fillFromChunk()
{
    // Scan chunks until one passes its integrity check (or the policy
    // says stop). A corrupt chunk *header* cannot be skipped -- without
    // a trustworthy count there is no next-chunk boundary -- so it
    // ends the stream under every policy (an error under Strict).
    while (true) {
        ChunkHeader h;
        const std::size_t got =
            std::fread(&h, 1, sizeof(h), file_);
        if (got == 0)
            return false; // clean end of data
        if (got < sizeof(h)) {
            ++truncatedTails_;
            if (policy_ == TraceReadPolicy::Strict) {
                status_ = corruptionError("trace file '", path_,
                                          "': truncated chunk header");
                ended_ = true;
            }
            return false;
        }
        if (h.count == 0 || h.count > chunkRecords_) {
            // Unskippable even under SkipCorrupt: without a
            // trustworthy count there is no next-chunk boundary to
            // resync to, so the stream ends here under every policy.
            onCorrupt(logFormat("implausible chunk count ", h.count));
            ended_ = true;
            return false;
        }

        // Chunk payloads come from the free-list pool: the first chunk
        // sizes the buffer, every later chunk reuses it (chunks share
        // one fixed record budget, so the capacity never grows again).
        PoolLease<std::vector<unsigned char>> payload_lease(payloadPool_);
        std::vector<unsigned char> &payload = *payload_lease;
        payload.resize(static_cast<std::size_t>(h.count) *
                       sizeof(DiskRecord));
        if (std::fread(payload.data(), 1, payload.size(), file_) !=
            payload.size()) {
            ++truncatedTails_;
            if (policy_ == TraceReadPolicy::Strict) {
                status_ = corruptionError("trace file '", path_,
                                          "': truncated chunk payload");
                ended_ = true;
            }
            return false;
        }
        if (crc32(payload.data(), payload.size()) != h.crc) {
            if (!onCorrupt("chunk CRC mismatch"))
                return false;
            recordsSkipped_ += h.count;
            continue; // SkipCorrupt: try the next chunk
        }

        ++chunksRead_;
        buffer_.resize(h.count);
        for (std::uint32_t i = 0; i < h.count; ++i) {
            DiskRecord d;
            std::memcpy(&d, payload.data() + i * sizeof(DiskRecord),
                        sizeof(d));
            buffer_[i] = unpack(d);
            if (sanitizeRecord(buffer_[i]))
                ++recordsSanitized_;
        }
        bufferPos_ = 0;
        return true;
    }
}

bool
FileTraceSource::nextV1(TraceRecord &rec)
{
    DiskRecord d;
    const std::size_t got = std::fread(&d, 1, sizeof(d), file_);
    if (got == 0)
        return false;
    if (got < sizeof(d)) {
        // v1 has no CRC; a partial record at EOF is the only
        // detectable damage.
        ++truncatedTails_;
        if (policy_ == TraceReadPolicy::Strict) {
            status_ = corruptionError("trace file '", path_,
                                      "': truncated record");
            ended_ = true;
        }
        return false;
    }
    rec = unpack(d);
    if (sanitizeRecord(rec))
        ++recordsSanitized_;
    return true;
}

bool
FileTraceSource::next(TraceRecord &rec)
{
    if (ended_)
        return false;

    for (int pass = 0; pass < 2; ++pass) {
        if (version_ == 1) {
            if (nextV1(rec)) {
                ++read_;
                return true;
            }
        } else {
            if (bufferPos_ < buffer_.size() || fillFromChunk()) {
                rec = buffer_[bufferPos_++];
                ++read_;
                return true;
            }
        }
        if (ended_ || !loop_)
            return false;
        // End of data: wrap to the first record, as the generator
        // sources effectively do.
        std::fseek(file_, dataStart_, SEEK_SET);
        buffer_.clear();
        bufferPos_ = 0;
        ++loops_;
    }
    return false; // empty (or fully corrupt) trace: nothing to loop
}

void
FileTraceSource::ckpt(ckpt::Archiver &ar)
{
    if (!status_.ok()) {
        ar.fail(status_.withContext("trace source is unhealthy; its "
                                    "cursor cannot be checkpointed"));
        return;
    }
    std::uint64_t offset =
        ar.saving() ? static_cast<std::uint64_t>(std::ftell(file_)) : 0;
    ar.u64(offset);
    if (!ar.saving() && ar.ok() &&
        std::fseek(file_, static_cast<long>(offset), SEEK_SET) != 0) {
        ar.fail(ioError("trace file '", path_, "': seek to checkpointed "
                        "offset ", offset, " failed"));
        return;
    }
    ar.u64(read_);
    ar.boolean(ended_);
    ar.vec(buffer_, ckptRecord);
    ar.sz(bufferPos_);
    if (!ar.saving() && ar.ok() && bufferPos_ > buffer_.size()) {
        ar.fail(corruptionError("trace cursor points past the buffered "
                                "chunk (", bufferPos_, " > ",
                                buffer_.size(), ")"));
        return;
    }
    stats_.ckpt(ar);
}

void
FileTraceSource::reset()
{
    std::fseek(file_, dataStart_, SEEK_SET);
    buffer_.clear();
    bufferPos_ = 0;
    read_ = 0;
    if (policy_ != TraceReadPolicy::Strict || status_.ok())
        ended_ = false;
}

} // namespace ebcp
