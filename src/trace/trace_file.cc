#include "trace/trace_file.hh"

#include <cstring>

#include "util/logging.hh"

namespace ebcp
{

namespace
{

constexpr char Magic[8] = {'E', 'B', 'C', 'P', 'T', 'R', 'C', '1'};

/** On-disk record layout (little-endian, fixed 32 bytes). */
struct DiskRecord
{
    std::uint64_t pc;
    std::uint64_t addr;
    std::uint64_t target;
    std::uint8_t op;
    std::uint8_t dstReg;
    std::uint8_t srcReg0;
    std::uint8_t srcReg1;
    std::uint8_t taken;
    std::uint8_t pad[3];
};

static_assert(sizeof(DiskRecord) == 32, "trace record layout");

DiskRecord
pack(const TraceRecord &r)
{
    DiskRecord d{};
    d.pc = r.pc;
    d.addr = r.addr;
    d.target = r.target;
    d.op = static_cast<std::uint8_t>(r.op);
    d.dstReg = r.dstReg;
    d.srcReg0 = r.srcReg0;
    d.srcReg1 = r.srcReg1;
    d.taken = r.taken ? 1 : 0;
    return d;
}

TraceRecord
unpack(const DiskRecord &d)
{
    TraceRecord r;
    r.pc = d.pc;
    r.addr = d.addr;
    r.target = d.target;
    r.op = static_cast<OpClass>(d.op);
    r.dstReg = d.dstReg;
    r.srcReg0 = d.srcReg0;
    r.srcReg1 = d.srcReg1;
    r.taken = d.taken != 0;
    return r;
}

} // namespace

TraceFileWriter::TraceFileWriter(const std::string &path)
{
    file_ = std::fopen(path.c_str(), "wb");
    fatal_if(!file_, "cannot open trace file '", path, "' for writing");
    std::uint32_t version = 1;
    std::uint32_t rec_size = sizeof(DiskRecord);
    std::fwrite(Magic, sizeof(Magic), 1, file_);
    std::fwrite(&version, sizeof(version), 1, file_);
    std::fwrite(&rec_size, sizeof(rec_size), 1, file_);
}

TraceFileWriter::~TraceFileWriter()
{
    close();
}

void
TraceFileWriter::write(const TraceRecord &rec)
{
    panic_if(!file_, "write to a closed trace file");
    DiskRecord d = pack(rec);
    std::fwrite(&d, sizeof(d), 1, file_);
    ++written_;
}

void
TraceFileWriter::capture(TraceSource &src, std::uint64_t count)
{
    TraceRecord rec;
    for (std::uint64_t i = 0; i < count && src.next(rec); ++i)
        write(rec);
}

void
TraceFileWriter::close()
{
    if (file_) {
        std::fclose(file_);
        file_ = nullptr;
    }
}

FileTraceSource::FileTraceSource(const std::string &path, bool loop)
    : loop_(loop)
{
    file_ = std::fopen(path.c_str(), "rb");
    fatal_if(!file_, "cannot open trace file '", path, "'");
    readHeader();
}

void
FileTraceSource::readHeader()
{
    char magic[8];
    std::uint32_t version = 0;
    std::uint32_t rec_size = 0;
    fatal_if(std::fread(magic, sizeof(magic), 1, file_) != 1 ||
                 std::memcmp(magic, Magic, sizeof(Magic)) != 0,
             "not an EBCP trace file");
    fatal_if(std::fread(&version, sizeof(version), 1, file_) != 1 ||
                 version != 1,
             "unsupported trace file version");
    fatal_if(std::fread(&rec_size, sizeof(rec_size), 1, file_) != 1 ||
                 rec_size != sizeof(DiskRecord),
             "trace record size mismatch");
    dataStart_ = std::ftell(file_);
}

FileTraceSource::~FileTraceSource()
{
    if (file_)
        std::fclose(file_);
}

bool
FileTraceSource::next(TraceRecord &rec)
{
    DiskRecord d;
    if (std::fread(&d, sizeof(d), 1, file_) != 1) {
        if (!loop_)
            return false;
        std::fseek(file_, dataStart_, SEEK_SET);
        if (std::fread(&d, sizeof(d), 1, file_) != 1)
            return false; // empty trace
    }
    rec = unpack(d);
    ++read_;
    return true;
}

void
FileTraceSource::reset()
{
    std::fseek(file_, dataStart_, SEEK_SET);
    read_ = 0;
}

} // namespace ebcp
