#include "trace/address_map.hh"

#include <algorithm>

#include "util/logging.hh"

namespace ebcp
{

namespace
{
/** Domain tags keep the hashed identities of different kinds apart. */
constexpr std::uint64_t TagChain = 0x11;
constexpr std::uint64_t TagBtree = 0x22;
constexpr std::uint64_t TagPage = 0x33;
} // namespace

AddressMap::AddressMap(const WorkloadConfig &cfg)
    : cfg_(cfg),
      numPages_(cfg.heapLines / 32), // 32 lines per 2KB page
      hotLines_(static_cast<std::uint32_t>(cfg.hotBytes / 64))
{
    fatal_if(cfg.heapLines < 64, "heap too small");
    fatal_if(hotLines_ == 0, "hot region too small");
}

Addr
AddressMap::heapLine(std::uint64_t h) const
{
    return cfg_.heapBase + (h % cfg_.heapLines) * 64;
}

Addr
AddressMap::chainNode(std::uint32_t chain, std::uint32_t hop) const
{
    const std::uint64_t id = (TagChain << 56) |
                             (static_cast<std::uint64_t>(chain) << 16) |
                             hop;
    return heapLine(mix64(id));
}

Addr
AddressMap::btreeNode(unsigned level, std::uint32_t key) const
{
    if (level == 0) {
        // The root is a single, permanently hot line.
        return cfg_.hotBase;
    }
    // Level l has numChains >> (4 * (levels - l)) nodes, so siblings
    // near the root are widely shared (and warm) and leaves are cold.
    const unsigned depth_below = cfg_.btreeLevels - level;
    std::uint32_t nodes = cfg_.numChains >> (4 * depth_below);
    if (nodes == 0)
        nodes = 1;
    // Upper levels have few (warm) nodes shared by many keys; the
    // leaf level is per-key and cold.
    const std::uint32_t idx =
        depth_below == 0 ? key
                         : static_cast<std::uint32_t>(mix64(key) % nodes);
    const std::uint64_t id = (TagBtree << 56) |
                             (static_cast<std::uint64_t>(level) << 40) |
                             idx;
    return heapLine(mix64(id));
}

Addr
AddressMap::recordPage(std::uint32_t key) const
{
    const std::uint64_t id = (TagPage << 56) | key;
    const std::uint64_t page = mix64(id) % numPages_;
    return cfg_.heapBase + page * 2048;
}

Addr
AddressMap::hotLine(std::uint32_t idx) const
{
    // Offset past the B-tree root line.
    return cfg_.hotBase + 64 + static_cast<Addr>(idx % hotLines_) * 64;
}

Addr
AddressMap::functionBase(std::uint32_t fn) const
{
    return cfg_.codeBase + dispatcherBytes() +
           static_cast<Addr>(fn) * cfg_.funcBytes;
}

} // namespace ebcp
