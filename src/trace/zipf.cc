#include "trace/zipf.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace ebcp
{

ZipfSampler::ZipfSampler(std::uint32_t n, double skew)
{
    fatal_if(n == 0, "ZipfSampler over an empty range");
    cdf_.resize(n);
    double sum = 0.0;
    for (std::uint32_t i = 0; i < n; ++i) {
        sum += 1.0 / std::pow(static_cast<double>(i + 1), skew);
        cdf_[i] = sum;
    }
    for (double &v : cdf_)
        v /= sum;
}

std::uint32_t
ZipfSampler::sample(Pcg32 &rng) const
{
    const double u = rng.uniform();
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    if (it == cdf_.end())
        --it;
    return static_cast<std::uint32_t>(it - cdf_.begin());
}

} // namespace ebcp
