#include "trace/workloads.hh"

#include "util/logging.hh"
#include "util/str.hh"

namespace ebcp
{

WorkloadConfig
databaseConfig(std::uint64_t seed)
{
    WorkloadConfig c;
    c.name = "database";
    c.seed = seed;
    // Data-miss dominated: scans (bursty MLP) over a very large
    // record heap, plus index chases; overall MLP ~1.8.
    c.txnTypes = 8;
    c.numFunctions = 2048;
    c.hotFunctions = 40;
    c.codeHotFraction = 0.952;
    c.heapLines = 8u << 20;         // 512MB of records
    c.numChains = 1536;
    c.chaseLenMin = 3;
    c.chaseLenMax = 5;
    c.scanLinesMin = 3;
    c.scanLinesMax = 5;
    c.zipfSkew = 0.35;
    c.coldKeyFraction = 0.04;
    c.mix = {0.6, 0.5, 1.5, 0.8};
    c.opsPerTxnMin = 5;
    c.opsPerTxnMax = 10;
    c.fillerInstsMin = 65;
    c.fillerInstsMax = 130;
    return c;
}

WorkloadConfig
tpcwConfig(std::uint64_t seed)
{
    WorkloadConfig c;
    c.name = "tpcw";
    c.seed = seed;
    // Web-tier: large code paths, light data traffic, low MLP.
    c.txnTypes = 8;
    c.numFunctions = 3072;
    c.hotFunctions = 32;
    c.codeHotFraction = 0.976;
    c.heapLines = 4u << 20;
    c.numChains = 2048;
    c.chaseLenMin = 1;
    c.chaseLenMax = 3;
    c.scanLinesMin = 2;
    c.scanLinesMax = 3;
    c.zipfSkew = 0.40;
    c.coldKeyFraction = 0.04;
    c.mix = {0.8, 0.4, 0.45, 2.8};
    c.opsPerTxnMin = 5;
    c.opsPerTxnMax = 10;
    c.fillerInstsMin = 70;
    c.fillerInstsMax = 140;
    return c;
}

WorkloadConfig
specjbbConfig(std::uint64_t seed)
{
    WorkloadConfig c;
    c.name = "specjbb";
    c.seed = seed;
    // Middle-tier Java: small, hot code; object-graph chases plus
    // allocation-style scans; medium MLP.
    c.txnTypes = 8;
    c.numFunctions = 512;
    c.hotFunctions = 64;
    c.codeHotFraction = 0.990;
    c.heapLines = 6u << 20;
    c.numChains = 1280;
    c.chaseLenMin = 3;
    c.chaseLenMax = 5;
    c.scanLinesMin = 4;
    c.scanLinesMax = 6;
    c.zipfSkew = 0.35;
    c.coldKeyFraction = 0.04;
    c.mix = {0.8, 0.3, 1.0, 1.2};
    c.opsPerTxnMin = 5;
    c.opsPerTxnMax = 10;
    c.fillerInstsMin = 62;
    c.fillerInstsMax = 128;
    return c;
}

WorkloadConfig
specjasConfig(std::uint64_t seed)
{
    WorkloadConfig c;
    c.name = "specjas";
    c.seed = seed;
    // Application server: the largest instruction working set in the
    // suite, moderate data misses, low MLP.
    c.txnTypes = 8;
    c.numFunctions = 4096;
    c.hotFunctions = 32;
    c.codeHotFraction = 0.948;
    c.heapLines = 5u << 20;
    c.numChains = 2048;
    c.chaseLenMin = 1;
    c.chaseLenMax = 3;
    c.scanLinesMin = 2;
    c.scanLinesMax = 4;
    c.zipfSkew = 0.40;
    c.coldKeyFraction = 0.04;
    c.mix = {0.9, 0.5, 0.6, 1.3};
    c.opsPerTxnMin = 5;
    c.opsPerTxnMax = 10;
    c.fillerInstsMin = 42;
    c.fillerInstsMax = 92;
    return c;
}

StatusOr<WorkloadConfig>
tryWorkloadByName(const std::string &name, std::uint64_t seed)
{
    if (name == "database")
        return databaseConfig(seed ? seed : 1);
    if (name == "tpcw")
        return tpcwConfig(seed ? seed : 2);
    if (name == "specjbb")
        return specjbbConfig(seed ? seed : 3);
    if (name == "specjas")
        return specjasConfig(seed ? seed : 4);
    std::string hint = nearestMatch(name, workloadNames());
    return notFoundError("unknown workload '", name,
                         "' (expected database/tpcw/specjbb/specjas",
                         hint.empty() ? std::string()
                                      : "; did you mean '" + hint + "'?",
                         ")");
}

WorkloadConfig
workloadByName(const std::string &name, std::uint64_t seed)
{
    StatusOr<WorkloadConfig> r = tryWorkloadByName(name, seed);
    fatal_if(!r.ok(), r.status().toString());
    return r.take();
}

std::vector<std::string>
workloadNames()
{
    return {"database", "tpcw", "specjbb", "specjas"};
}

StatusOr<std::unique_ptr<SyntheticWorkload>>
tryMakeWorkload(const std::string &name, std::uint64_t seed)
{
    StatusOr<WorkloadConfig> cfg = tryWorkloadByName(name, seed);
    if (!cfg.ok())
        return cfg.status();
    return std::make_unique<SyntheticWorkload>(cfg.take());
}

std::unique_ptr<SyntheticWorkload>
makeWorkload(const std::string &name, std::uint64_t seed)
{
    return std::make_unique<SyntheticWorkload>(workloadByName(name, seed));
}

} // namespace ebcp
