#include "trace/fault_injection.hh"

namespace ebcp
{

FaultInjectingTraceSource::FaultInjectingTraceSource(
    TraceSource &inner, const FaultPlan &plan)
    : inner_(inner), plan_(plan),
      rng_(plan.seed,
           static_cast<std::uint64_t>(FaultStream::TraceSource))
{
    stats_.add(bitflips_);
    stats_.add(truncations_);
    stats_.add(shortReads_);
    stats_.add(recordsDropped_);
}

void
FaultInjectingTraceSource::flipOneBit(TraceRecord &rec)
{
    // Flip within the fields a real on-disk corruption could reach.
    // Address-like fields get the full 64-bit range; control fields
    // get their own width. Sanitization below keeps the result safe.
    switch (rng_.below(7)) {
      case 0: rec.pc ^= 1ULL << rng_.below(64); break;
      case 1: rec.addr ^= 1ULL << rng_.below(64); break;
      case 2: rec.target ^= 1ULL << rng_.below(64); break;
      case 3:
        rec.op = static_cast<OpClass>(static_cast<std::uint8_t>(rec.op) ^
                                      (1u << rng_.below(8)));
        break;
      case 4: rec.dstReg ^= 1u << rng_.below(8); break;
      case 5: rec.srcReg0 ^= 1u << rng_.below(8); break;
      case 6: rec.srcReg1 ^= 1u << rng_.below(8); break;
    }
    ++bitflips_;
}

bool
FaultInjectingTraceSource::next(TraceRecord &rec)
{
    if (truncated_)
        return false;
    if (plan_.traceTruncate && delivered_ >= plan_.truncateAfter) {
        truncated_ = true;
        ++truncations_;
        return false;
    }

    if (plan_.traceShortRead && rng_.chance(plan_.rate)) {
        // A short read loses a small run of consecutive records.
        const std::uint32_t n = 1 + rng_.below(16);
        TraceRecord lost;
        for (std::uint32_t i = 0; i < n; ++i) {
            if (!inner_.next(lost))
                return false;
            ++recordsDropped_;
        }
        ++shortReads_;
    }

    if (!inner_.next(rec))
        return false;

    if (plan_.traceBitflip && rng_.chance(plan_.rate)) {
        flipOneBit(rec);
        sanitizeRecord(rec);
    }
    ++delivered_;
    return true;
}

void
FaultInjectingTraceSource::reset()
{
    inner_.reset();
    rng_.reseed(plan_.seed,
                static_cast<std::uint64_t>(FaultStream::TraceSource));
    delivered_ = 0;
    truncated_ = false;
}

} // namespace ebcp
