#include "trace/fault_injection.hh"

#include <algorithm>

#include "ckpt/checkpoint.hh"
#include "ckpt/containers.hh"

namespace ebcp
{

namespace
{

// Container header bytes: magic 8 + version 4 + fingerprint 8 +
// section count 4 + header CRC 4 (see ckpt/checkpoint.hh).
constexpr std::size_t kCkptHeaderBytes = 28;

void
flipBitAt(std::string &buffer, std::size_t lo, std::size_t hi,
          Pcg32 &rng)
{
    const std::size_t span = hi - lo;
    const std::size_t byte =
        lo + rng.below(static_cast<std::uint32_t>(span));
    buffer[byte] = static_cast<char>(
        static_cast<unsigned char>(buffer[byte]) ^ (1u << rng.below(8)));
}

} // namespace

const char *
ckptFaultKindName(CkptFaultKind kind)
{
    switch (kind) {
      case CkptFaultKind::HeaderBitflip: return "header-bitflip";
      case CkptFaultKind::SectionTruncate: return "section-truncate";
      case CkptFaultKind::CrcFlip: return "crc-flip";
      case CkptFaultKind::ShortWrite: return "short-write";
    }
    return "unknown";
}

void
injectCkptFault(std::string &buffer, CkptFaultKind kind,
                std::uint64_t seed)
{
    Pcg32 rng(seed, static_cast<std::uint64_t>(FaultStream::Checkpoint));
    if (buffer.empty()) {
        buffer.push_back('\0'); // still material damage to "nothing"
        return;
    }
    const std::size_t header = std::min(kCkptHeaderBytes, buffer.size());
    switch (kind) {
      case CkptFaultKind::HeaderBitflip:
        flipBitAt(buffer, 0, header, rng);
        break;
      case CkptFaultKind::SectionTruncate:
        // Keep the header intact; the file ends somewhere inside the
        // section area, as a partially copied file would.
        if (buffer.size() > kCkptHeaderBytes) {
            const std::size_t keep =
                kCkptHeaderBytes +
                rng.below(static_cast<std::uint32_t>(buffer.size() -
                                                     kCkptHeaderBytes));
            buffer.resize(keep);
        } else {
            buffer.resize(buffer.size() / 2);
        }
        break;
      case CkptFaultKind::CrcFlip:
        // Land the flip past the header: a section name, length,
        // stored CRC or payload byte. Whichever it hits, the eager
        // CRC validation must catch it.
        if (buffer.size() > kCkptHeaderBytes)
            flipBitAt(buffer, kCkptHeaderBytes, buffer.size(), rng);
        else
            flipBitAt(buffer, 0, buffer.size(), rng);
        break;
      case CkptFaultKind::ShortWrite: {
        // The tail never hit the disk: lose 1..64 final bytes.
        const std::size_t cap = std::min<std::size_t>(
            64, buffer.size() > 1 ? buffer.size() - 1 : 1);
        const std::size_t lost =
            1 + rng.below(static_cast<std::uint32_t>(cap));
        buffer.resize(buffer.size() - std::min(lost, buffer.size()));
        break;
      }
    }
}

Status
injectCkptFaultFile(const std::string &path, CkptFaultKind kind,
                    std::uint64_t seed)
{
    StatusOr<std::string> data = ckpt::readFile(path);
    if (!data.ok())
        return data.status();
    std::string buffer = data.take();
    injectCkptFault(buffer, kind, seed);
    return ckpt::atomicWriteFile(path, buffer);
}

FaultInjectingTraceSource::FaultInjectingTraceSource(
    TraceSource &inner, const FaultPlan &plan)
    : inner_(inner), plan_(plan),
      rng_(plan.seed,
           static_cast<std::uint64_t>(FaultStream::TraceSource))
{
    stats_.add(bitflips_);
    stats_.add(truncations_);
    stats_.add(shortReads_);
    stats_.add(recordsDropped_);
}

void
FaultInjectingTraceSource::flipOneBit(TraceRecord &rec)
{
    // Flip within the fields a real on-disk corruption could reach.
    // Address-like fields get the full 64-bit range; control fields
    // get their own width. Sanitization below keeps the result safe.
    switch (rng_.below(7)) {
      case 0: rec.pc ^= 1ULL << rng_.below(64); break;
      case 1: rec.addr ^= 1ULL << rng_.below(64); break;
      case 2: rec.target ^= 1ULL << rng_.below(64); break;
      case 3:
        rec.op = static_cast<OpClass>(static_cast<std::uint8_t>(rec.op) ^
                                      (1u << rng_.below(8)));
        break;
      case 4: rec.dstReg ^= 1u << rng_.below(8); break;
      case 5: rec.srcReg0 ^= 1u << rng_.below(8); break;
      case 6: rec.srcReg1 ^= 1u << rng_.below(8); break;
    }
    ++bitflips_;
}

bool
FaultInjectingTraceSource::next(TraceRecord &rec)
{
    if (truncated_)
        return false;
    if (plan_.traceTruncate && delivered_ >= plan_.truncateAfter) {
        truncated_ = true;
        ++truncations_;
        return false;
    }

    if (plan_.traceShortRead && rng_.chance(plan_.rate)) {
        // A short read loses a small run of consecutive records.
        const std::uint32_t n = 1 + rng_.below(16);
        TraceRecord lost;
        for (std::uint32_t i = 0; i < n; ++i) {
            if (!inner_.next(lost))
                return false;
            ++recordsDropped_;
        }
        ++shortReads_;
    }

    if (!inner_.next(rec))
        return false;

    if (plan_.traceBitflip && rng_.chance(plan_.rate)) {
        flipOneBit(rec);
        sanitizeRecord(rec);
    }
    ++delivered_;
    return true;
}

void
FaultInjectingTraceSource::reset()
{
    inner_.reset();
    rng_.reseed(plan_.seed,
                static_cast<std::uint64_t>(FaultStream::TraceSource));
    delivered_ = 0;
    truncated_ = false;
}

void
FaultInjectingTraceSource::ckpt(ckpt::Archiver &ar)
{
    inner_.ckpt(ar);
    ckpt::ckptPcg32(ar, rng_);
    ar.u64(delivered_);
    ar.boolean(truncated_);
    stats_.ckpt(ar);
}

} // namespace ebcp
