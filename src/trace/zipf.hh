/**
 * @file
 * Bounded Zipf-distributed key sampling (transaction key popularity).
 */

#ifndef EBCP_TRACE_ZIPF_HH
#define EBCP_TRACE_ZIPF_HH

#include <cstdint>
#include <vector>

#include "util/random.hh"

namespace ebcp
{

/**
 * Samples integers in [0, n) with probability proportional to
 * 1 / (i+1)^skew, via a precomputed CDF and binary search.
 */
class ZipfSampler
{
  public:
    ZipfSampler(std::uint32_t n, double skew);

    /** Draw one key using @p rng. */
    std::uint32_t sample(Pcg32 &rng) const;

    std::uint32_t range() const
    {
        return static_cast<std::uint32_t>(cdf_.size());
    }

  private:
    std::vector<double> cdf_;
};

} // namespace ebcp

#endif // EBCP_TRACE_ZIPF_HH
