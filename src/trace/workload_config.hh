/**
 * @file
 * Parameters of the synthetic commercial-workload generator.
 *
 * The paper's traces are proprietary (a large OLTP database, TPC-W,
 * SPECjbb2005, SPECjAppServer2004 on SPARC). What correlation
 * prefetchers actually see is the miss-address stream, so the
 * generator synthesizes the properties that shape it:
 *
 *  - transactions: each of a fixed set of transaction types executes
 *    a deterministic sequence of operations over data derived from a
 *    per-instance key, so recurring (type, key) pairs replay the same
 *    miss sequence -- the recurrence correlation prefetchers exploit;
 *  - irregular addresses: pointer chases and B-tree walks produce
 *    dependent, non-strided misses (low MLP, stream-defeating);
 *  - record scans: independent loads over 2KB pages (bursty MLP,
 *    spatially local -- what SMS can learn);
 *  - large code paths: every operation runs inside a synthetic
 *    function body, giving an instruction footprint far beyond the
 *    L2 for the I-miss-heavy workloads;
 *  - noise: a fraction of operations use one-shot keys, bounding the
 *    achievable coverage like real transaction-local data does.
 */

#ifndef EBCP_TRACE_WORKLOAD_CONFIG_HH
#define EBCP_TRACE_WORKLOAD_CONFIG_HH

#include <cstdint>
#include <string>

#include "util/types.hh"

namespace ebcp
{

/** Relative weight of each operation kind in a transaction body. */
struct OpMix
{
    double chase = 1.0; //!< pointer chase (serial dependent loads)
    double btree = 1.0; //!< index lookup (serial, top levels hot)
    double scan = 1.0;  //!< record-page scan (independent loads)
    double hot = 1.0;   //!< hot-structure work (on-chip hits)
};

/** All generator knobs. */
struct WorkloadConfig
{
    std::string name = "synthetic";
    std::uint64_t seed = 1;

    // ---- code side -----------------------------------------------------
    unsigned numFunctions = 2048;      //!< distinct function bodies
    unsigned funcBytes = 4096;         //!< bytes of code per function
    unsigned blockInsts = 12;          //!< instructions per basic block
    double branchNoise = 0.06;         //!< fraction of random-outcome
                                       //!< conditional branches
    double codeHotFraction = 0.85;     //!< calls that reuse the hot
                                       //!< function subset
    unsigned hotFunctions = 64;        //!< size of that hot subset

    // ---- data side -----------------------------------------------------
    std::uint64_t heapLines = 8u << 20; //!< data footprint in lines
    unsigned numChains = 16384;        //!< key space (chain heads)
    unsigned chaseLenMin = 2;          //!< hops per pointer chase
    unsigned chaseLenMax = 5;
    unsigned scanLinesMin = 2;         //!< lines per record-page scan
    unsigned scanLinesMax = 6;
    unsigned btreeLevels = 3;          //!< serial levels below the root
    double zipfSkew = 0.75;            //!< key popularity skew
    double coldKeyFraction = 0.25;     //!< one-shot (unlearnable) ops
    double jitterProb = 0.15;          //!< per-op chance of an injected
                                       //!< interrupt (a one-shot access
                                       //!< at a *random position*,
                                       //!< shifting successor
                                       //!< distances like lock retries
                                       //!< and interrupts do)
    double storeFraction = 0.30;       //!< ops that also write a line
    double depBranchProb = 0.15;       //!< branch fed by a chase load

    // ---- transaction shape ----------------------------------------------
    unsigned txnTypes = 16;
    unsigned opsPerTxnMin = 4;
    unsigned opsPerTxnMax = 10;
    OpMix mix;
    unsigned fillerInstsMin = 20;  //!< ALU work between data accesses
    unsigned fillerInstsMax = 60;
    unsigned serializeEvery = 50000; //!< ~insts between serializers

    // ---- layout --------------------------------------------------------
    Addr codeBase = 0x0000'4000'0000ULL;
    Addr heapBase = 0x0010'0000'0000ULL;
    Addr hotBase = 0x0008'0000'0000ULL;
    std::uint64_t hotBytes = 192 * KiB; //!< hot data (fits in L2)
};

} // namespace ebcp

#endif // EBCP_TRACE_WORKLOAD_CONFIG_HH
