/**
 * @file
 * Binary trace record/replay with integrity checking.
 *
 * The paper's methodology is trace-driven; this pair of classes lets
 * users capture a synthetic workload (or convert an external trace,
 * e.g. from a ChampSim-style tracer) into this simulator's format and
 * replay it deterministically.
 *
 * Format v2 (written by TraceFileWriter):
 *
 *     [ 8B magic "EBCPTRC2" ][u32 version][u32 rec_size]
 *     [u32 chunk_records][u32 header_crc]
 *     chunk*: [u32 count][u32 payload_crc][count * rec_size bytes]
 *
 * header_crc covers the 20 bytes before it; payload_crc covers the
 * chunk's records. Fixed-size little-endian records. The final chunk
 * may hold fewer than chunk_records records.
 *
 * Format v1 ("EBCPTRC1" + version + record size, then raw records) is
 * still readable; it simply has no integrity data, so only truncated
 * tails are detectable.
 *
 * Since trace files are user input (possibly converted from untrusted
 * sources), every open/read/write path reports failures as Status
 * instead of exiting, and the reader's handling of corrupt chunks is
 * selectable via TraceReadPolicy.
 */

#ifndef EBCP_TRACE_TRACE_FILE_HH
#define EBCP_TRACE_TRACE_FILE_HH

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "cpu/trace.hh"
#include "stats/group.hh"
#include "util/object_pool.hh"
#include "util/status.hh"

namespace ebcp
{

/** How FileTraceSource reacts to a failed chunk integrity check. */
enum class TraceReadPolicy
{
    Strict,        //!< corruption is an error; reading stops, the
                   //!< source's status() turns non-ok
    SkipCorrupt,   //!< count and skip the bad chunk, keep reading
    StopAtCorrupt, //!< count it and treat it as end-of-trace
};

/** Parse "strict" / "skip-corrupt" / "stop-at-corrupt". */
StatusOr<TraceReadPolicy> traceReadPolicyFromName(const std::string &name);

/** Writes TraceRecords to a v2 trace file. */
class TraceFileWriter
{
  public:
    /**
     * Open @p path for writing and emit the v2 header.
     * @param chunk_records records per CRC-protected chunk
     */
    static StatusOr<std::unique_ptr<TraceFileWriter>>
    open(const std::string &path, unsigned chunk_records = 1024);

    ~TraceFileWriter();

    TraceFileWriter(const TraceFileWriter &) = delete;
    TraceFileWriter &operator=(const TraceFileWriter &) = delete;

    /** Append one record (buffered until a chunk fills). */
    Status write(const TraceRecord &rec);

    /** Capture @p count records from @p src. */
    Status capture(TraceSource &src, std::uint64_t count);

    std::uint64_t recordsWritten() const { return written_; }

    /**
     * Flush the partial chunk and close, verifying every byte reached
     * the OS (a short write on a full disk must not pass silently).
     * Also invoked by the destructor, which warns on error.
     */
    Status close();

  private:
    TraceFileWriter(std::FILE *file, std::string path,
                    unsigned chunk_records)
        : file_(file), path_(std::move(path)),
          chunkRecords_(chunk_records)
    {}

    Status flushChunk();

    std::FILE *file_ = nullptr;
    std::string path_;
    unsigned chunkRecords_;
    std::vector<unsigned char> chunk_; //!< packed records of the
                                       //!< chunk being built
    std::uint64_t written_ = 0;
};

/** Replays a trace file as a TraceSource. */
class FileTraceSource : public TraceSource
{
  public:
    /**
     * Open and validate @p path (magic, version, record size, header
     * CRC for v2).
     *
     * @param loop restart from the beginning at end-of-file (so the
     *        file can feed arbitrarily long runs, as the generator
     *        sources do)
     * @param policy reaction to corrupt chunks while reading
     */
    static StatusOr<std::unique_ptr<FileTraceSource>>
    open(const std::string &path, bool loop = true,
         TraceReadPolicy policy = TraceReadPolicy::Strict);

    ~FileTraceSource() override;

    FileTraceSource(const FileTraceSource &) = delete;
    FileTraceSource &operator=(const FileTraceSource &) = delete;

    bool next(TraceRecord &rec) override;
    void reset() override;

    /**
     * Serialize or restore the replay cursor: the file offset, the
     * decoded records of the current chunk, and the read counters.
     * Fails (instead of saving a lie) if the source has already gone
     * unhealthy -- a corrupt stream has no trustworthy position.
     */
    void ckpt(ckpt::Archiver &ar) override;

    /**
     * Ok while reading is healthy. Under the Strict policy this turns
     * into a Corruption/IoError status when next() hits a bad chunk
     * (next() then returns false); callers at the boundary check it
     * after the run.
     */
    const Status &status() const { return status_; }

    std::uint64_t recordsRead() const { return read_; }

    /** Corruption / recovery counters (also in the stats group). */
    std::uint64_t corruptChunks() const
    {
        return corruptChunks_.value();
    }
    std::uint64_t truncatedTails() const
    {
        return truncatedTails_.value();
    }
    std::uint64_t recordsSkipped() const
    {
        return recordsSkipped_.value();
    }
    std::uint64_t recordsSanitized() const
    {
        return recordsSanitized_.value();
    }

    unsigned formatVersion() const { return version_; }

    StatGroup &stats() { return stats_; }

  private:
    FileTraceSource(std::FILE *file, std::string path, bool loop,
                    TraceReadPolicy policy)
        : file_(file), path_(std::move(path)), loop_(loop),
          policy_(policy)
    {
        stats_.add(chunksRead_);
        stats_.add(corruptChunks_);
        stats_.add(truncatedTails_);
        stats_.add(recordsSkipped_);
        stats_.add(recordsSanitized_);
        stats_.add(loops_);
    }

    Status readHeader();

    /** Refill buffer_ from the next v2 chunk; false at end-of-data. */
    bool fillFromChunk();

    /** One record from a v1 stream; false at end-of-data. */
    bool nextV1(TraceRecord &rec);

    /** React to a bad chunk per policy_. @return true to keep reading. */
    bool onCorrupt(const std::string &what);

    std::FILE *file_ = nullptr;
    std::string path_;
    bool loop_;
    TraceReadPolicy policy_;
    unsigned version_ = 2;
    unsigned chunkRecords_ = 0;
    std::uint64_t read_ = 0;
    long dataStart_ = 0;
    bool ended_ = false; //!< reached a terminal condition (error /
                         //!< stop-at-corrupt / unrecoverable header)
    Status status_;

    std::vector<TraceRecord> buffer_; //!< records of the current chunk
    std::size_t bufferPos_ = 0;
    //! Recycled chunk-payload buffers (no per-chunk allocation).
    FreeListPool<std::vector<unsigned char>> payloadPool_;

  public:
    /** Payload-buffer reuse counters (throughput bench / tests). */
    const PoolStats &payloadPoolStats() const
    {
        return payloadPool_.stats();
    }

  private:

    StatGroup stats_{"trace_source"};
    Scalar chunksRead_{"chunks_read", "CRC-verified chunks delivered"};
    Scalar corruptChunks_{"corrupt_chunks",
                          "chunks failing the CRC / header check"};
    Scalar truncatedTails_{"truncated_tails",
                           "incomplete chunks or records at EOF"};
    Scalar recordsSkipped_{"records_skipped",
                           "records lost to skipped corrupt chunks"};
    Scalar recordsSanitized_{"records_sanitized",
                             "records with out-of-range fields clamped"};
    Scalar loops_{"loops", "times the source wrapped to the start"};
};

} // namespace ebcp

#endif // EBCP_TRACE_TRACE_FILE_HH
