/**
 * @file
 * Binary trace record/replay.
 *
 * The paper's methodology is trace-driven; this pair of classes lets
 * users capture a synthetic workload (or convert an external trace,
 * e.g. from a ChampSim-style tracer) into this simulator's format and
 * replay it deterministically.
 *
 * Format: an 16-byte header ("EBCPTRC1" + version + record size),
 * then fixed-size little-endian records until end of file.
 */

#ifndef EBCP_TRACE_TRACE_FILE_HH
#define EBCP_TRACE_TRACE_FILE_HH

#include <cstdio>
#include <string>

#include "cpu/trace.hh"

namespace ebcp
{

/** Writes TraceRecords to a file. */
class TraceFileWriter
{
  public:
    /** Opens @p path for writing; fatal() on failure. */
    explicit TraceFileWriter(const std::string &path);
    ~TraceFileWriter();

    TraceFileWriter(const TraceFileWriter &) = delete;
    TraceFileWriter &operator=(const TraceFileWriter &) = delete;

    /** Append one record. */
    void write(const TraceRecord &rec);

    /** Capture @p count records from @p src. */
    void capture(TraceSource &src, std::uint64_t count);

    std::uint64_t recordsWritten() const { return written_; }

    /** Flush and close (also done by the destructor). */
    void close();

  private:
    std::FILE *file_ = nullptr;
    std::uint64_t written_ = 0;
};

/** Replays a trace file as a TraceSource. */
class FileTraceSource : public TraceSource
{
  public:
    /**
     * @param path trace file to read
     * @param loop restart from the beginning at end-of-file (so the
     *        file can feed arbitrarily long runs, as the generator
     *        sources do)
     */
    explicit FileTraceSource(const std::string &path, bool loop = true);
    ~FileTraceSource() override;

    FileTraceSource(const FileTraceSource &) = delete;
    FileTraceSource &operator=(const FileTraceSource &) = delete;

    bool next(TraceRecord &rec) override;
    void reset() override;

    std::uint64_t recordsRead() const { return read_; }

  private:
    void readHeader();

    std::FILE *file_ = nullptr;
    bool loop_;
    std::uint64_t read_ = 0;
    long dataStart_ = 0;
};

} // namespace ebcp

#endif // EBCP_TRACE_TRACE_FILE_HH
