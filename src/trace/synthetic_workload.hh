/**
 * @file
 * The synthetic commercial-workload trace source.
 *
 * At construction a fixed set of transaction types is generated
 * deterministically from the seed; each type is a sequence of
 * operations (pointer chase / B-tree lookup / record scan / hot
 * work), each bound to a function body whose code the transaction
 * walks while performing the data accesses.
 *
 * At run time, transactions draw a Zipf-popular key; every data
 * address is a pure function of (type, key, op, element), so
 * recurring keys replay recurring miss sequences. A configurable
 * fraction of operations instead uses one-shot keys (transaction-
 * local data), bounding achievable prefetch coverage.
 */

#ifndef EBCP_TRACE_SYNTHETIC_WORKLOAD_HH
#define EBCP_TRACE_SYNTHETIC_WORKLOAD_HH

#include <vector>

#include "cpu/trace.hh"
#include "trace/address_map.hh"
#include "trace/record_ring.hh"
#include "trace/workload_config.hh"
#include "trace/zipf.hh"
#include "util/random.hh"

namespace ebcp
{

/** The generator. */
class SyntheticWorkload : public TraceSource
{
  public:
    explicit SyntheticWorkload(const WorkloadConfig &cfg);

    bool next(TraceRecord &rec) override;
    std::size_t nextBatch(TraceRecord *out, std::size_t max) override;

    // Zero-copy pull: the consumer reads the record ring in place (a
    // whole transaction is buffered contiguously modulo one wrap), so
    // the generate->consume path performs no per-record copies at all.
    bool spanSource() const override { return true; }
    std::size_t peekSpan(const TraceRecord **out,
                         std::size_t max) override;
    void consumeSpan(std::size_t n) override;

    void reset() override;

    /**
     * Serialize or restore the generation cursor: the RNG, the
     * buffered tail of the current transaction, and the emission
     * state. The transaction types, address map and Zipf CDF are pure
     * functions of the config and are rebuilt at construction.
     */
    void ckpt(ckpt::Archiver &ar) override;

    const WorkloadConfig &config() const { return cfg_; }
    const AddressMap &addressMap() const { return map_; }

  private:
    /** One operation of a transaction type. */
    struct OpDef
    {
        enum class Kind
        {
            Chase,
            BTree,
            Scan,
            Hot,
        };

        Kind kind = Kind::Hot;
        std::uint32_t fn = 0;  //!< hot function body; cold instances
                               //!< derive theirs from the entity id
        unsigned len = 1;      //!< hops / lines / hot accesses
        bool store = false;    //!< also writes its last line
        bool depBranch = false; //!< branch consuming the chased value
        unsigned fillerMin = 20; //!< code insts between accesses
        unsigned fillerMax = 40;
    };

    /** A transaction type: a fixed op sequence. */
    struct TxnType
    {
        std::vector<OpDef> ops;
    };

    /** One concrete memory access of an op instance. */
    struct MemAcc
    {
        Addr addr = 0;
        bool serial = false;  //!< depends on the previous access
        bool store = false;
        bool hot = false;     //!< expected to hit on chip
    };

    void buildTypes();
    void generateTransaction();
    void emitOp(const OpDef &op, std::uint32_t key,
                unsigned op_idx, bool force_cold = false);

    /** Emit @p n code instructions (ALU + block-end branches). */
    void emitCode(unsigned n);
    void emitAlu();
    void emitBranch(Addr target, bool noisy);
    void emitDispatcherStep();
    void emitCall(Addr fn_base);
    void emitReturn();
    void emitLoad(Addr addr, std::uint8_t dst, std::uint8_t src);
    void emitStore(Addr addr, std::uint8_t src);

    /** Claim the next ring slot, reset to a default record. Fill it,
     * then call finishRecord(pc) -- together they emit one record
     * without an intermediate local copy. The reference dies at
     * finishRecord(), which may push again (serializer injection). */
    TraceRecord &
    beginRecord()
    {
        TraceRecord &r = buf_.pushSlot();
        r = TraceRecord{};
        return r;
    }

    void finishRecord(Addr pc);

  public:
    /** Buffer traffic/allocation counters (throughput bench). */
    const RingStats &ringStats() const { return buf_.stats(); }

  private:
    WorkloadConfig cfg_;
    AddressMap map_;
    Pcg32 rng_;
    ZipfSampler keys_;
    std::vector<TxnType> types_;

    RecordRing<TraceRecord> buf_;

    // Emission state.
    Addr curPc_ = 0;        //!< next instruction PC inside a function
    Addr fnBase_ = 0;       //!< current function body
    Addr fnEnd_ = 0;
    Addr dispatcherPc_ = 0; //!< return-to point in the dispatcher
    unsigned blockLeft_ = 0;
    // Rotating register cursors, kept as wrapped indices so the
    // per-instruction emitters never divide: aluIdx_ = aluRot % 24,
    // aluPhase_ = aluRot % 4, loadIdx_ = loadRot % 12.
    unsigned aluIdx_ = 0;
    unsigned aluPhase_ = 0;
    unsigned loadIdx_ = 0;

    /** (aluIdx_ + k) % 24 for k < 24, without the division. */
    unsigned
    aluPlus(unsigned k) const
    {
        const unsigned i = aluIdx_ + k;
        return i >= 24 ? i - 24 : i;
    }
    std::uint64_t sinceSerialize_ = 0;
    std::uint64_t oneShot_ = 0; //!< counter for one-shot key synthesis

    // Register convention (see emit* implementations).
    static constexpr std::uint8_t RegBase = 9;
    static constexpr std::uint8_t RegChase = 8; //!< serial spine
    static constexpr std::uint8_t RegAlu0 = 16; //!< 24 rotating ALU regs
    static constexpr std::uint8_t RegLoad0 = 48; //!< 12 rotating dests
};

} // namespace ebcp

#endif // EBCP_TRACE_SYNTHETIC_WORKLOAD_HH
