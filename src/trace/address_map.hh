/**
 * @file
 * Deterministic synthetic address-space layout.
 *
 * Every object's physical address is a pure function of its identity
 * (kind, key, element), so a recurring transaction key replays an
 * identical miss-address sequence -- the recurrence that correlation
 * prefetching exploits -- without the generator storing any state.
 */

#ifndef EBCP_TRACE_ADDRESS_MAP_HH
#define EBCP_TRACE_ADDRESS_MAP_HH

#include "trace/workload_config.hh"
#include "util/bitfield.hh"
#include "util/types.hh"

namespace ebcp
{

/** Computes the layout described in WorkloadConfig. */
class AddressMap
{
  public:
    explicit AddressMap(const WorkloadConfig &cfg);

    /** Hop @p hop of pointer chain @p chain (irregular placement). */
    Addr chainNode(std::uint32_t chain, std::uint32_t hop) const;

    /**
     * B-tree node on the path to @p key at @p level (0 = root, hot;
     * deeper levels have geometrically more nodes).
     */
    Addr btreeNode(unsigned level, std::uint32_t key) const;

    /** 2KB-aligned record page for @p key (spatially local scans). */
    Addr recordPage(std::uint32_t key) const;

    /** Line @p idx of the small hot region (expected on-chip). */
    Addr hotLine(std::uint32_t idx) const;

    /** Entry point of function @p fn. */
    Addr functionBase(std::uint32_t fn) const;

    /** Start of the (hot) dispatcher code region. */
    Addr dispatcherBase() const { return cfg_.codeBase; }
    std::uint64_t dispatcherBytes() const { return 4 * KiB; }

    unsigned lineBytes() const { return 64; }
    std::uint64_t heapLines() const { return cfg_.heapLines; }

  private:
    /** Map a hashed identity into a heap line address. */
    Addr heapLine(std::uint64_t h) const;

    WorkloadConfig cfg_;
    std::uint64_t numPages_;
    std::uint32_t hotLines_;
};

} // namespace ebcp

#endif // EBCP_TRACE_ADDRESS_MAP_HH
