/**
 * @file
 * A TraceSource wrapper that injects deterministic faults into the
 * record stream, for proving the simulator degrades instead of dying
 * on damaged input (the robustness analogue of the paper's best-effort
 * correlation-table reads: a lost record, like a lost table read, must
 * cost accuracy, not correctness).
 *
 * Faults (armed via FaultPlan, all seeded):
 *  - bit-flip: one random bit of a delivered record's payload fields
 *    flips, as an undetected media/conversion error would;
 *  - truncate: the source ends permanently after a configured number
 *    of records, as a truncated file would;
 *  - short-read: a small run of records vanishes, as a short read
 *    dropped on the floor would.
 *
 * Every delivered record is sanitized (see sanitizeRecord), so a flip
 * in an op/register field degrades to a Nop/NoReg rather than feeding
 * the timing model out-of-range indices.
 */

#ifndef EBCP_TRACE_FAULT_INJECTION_HH
#define EBCP_TRACE_FAULT_INJECTION_HH

#include "cpu/trace.hh"
#include "stats/group.hh"
#include "util/fault.hh"
#include "util/random.hh"

namespace ebcp
{

/**
 * Ways a checkpoint file can plausibly be damaged at rest or in
 * flight; used to build the corrupted-checkpoint test corpus. Every
 * kind must surface on restore as a coded StatusCode::Corruption (or
 * InvalidArgument for version/fingerprint skew), never as a crash.
 */
enum class CkptFaultKind
{
    HeaderBitflip,   //!< one bit of the container header flips
    SectionTruncate, //!< the file ends inside the section area
    CrcFlip,         //!< one bit of a section (name/len/CRC/payload)
    ShortWrite,      //!< the final bytes were never written
};

/** All kinds, for corpus loops. */
constexpr CkptFaultKind kCkptFaultKinds[] = {
    CkptFaultKind::HeaderBitflip,
    CkptFaultKind::SectionTruncate,
    CkptFaultKind::CrcFlip,
    CkptFaultKind::ShortWrite,
};

/** @return printable kind name. */
const char *ckptFaultKindName(CkptFaultKind kind);

/**
 * Damage a serialized checkpoint in place, deterministically from
 * @p seed (stream FaultStream::Checkpoint). The damage is always
 * material: the buffer afterwards differs from the input.
 */
void injectCkptFault(std::string &buffer, CkptFaultKind kind,
                     std::uint64_t seed);

/** Read @p path, damage it, and write it back. */
Status injectCkptFaultFile(const std::string &path, CkptFaultKind kind,
                           std::uint64_t seed);

/** Wraps another TraceSource and injects the plan's trace faults. */
class FaultInjectingTraceSource : public TraceSource
{
  public:
    /** @p inner must outlive this wrapper. */
    FaultInjectingTraceSource(TraceSource &inner, const FaultPlan &plan);

    bool next(TraceRecord &rec) override;

    /** Restart both the wrapper's fault stream and the inner source,
     * reproducing the exact same fault sequence. */
    void reset() override;

    /** Serialize or restore the fault cursor together with the inner
     * source's cursor, so a restored run replays the identical
     * remainder of the fault sequence. */
    void ckpt(ckpt::Archiver &ar) override;

    std::uint64_t bitflipsInjected() const { return bitflips_.value(); }
    std::uint64_t truncationsInjected() const
    {
        return truncations_.value();
    }
    std::uint64_t shortReadsInjected() const
    {
        return shortReads_.value();
    }
    std::uint64_t recordsDropped() const
    {
        return recordsDropped_.value();
    }

    StatGroup &stats() { return stats_; }

  private:
    void flipOneBit(TraceRecord &rec);

    TraceSource &inner_;
    FaultPlan plan_;
    Pcg32 rng_;
    std::uint64_t delivered_ = 0;
    bool truncated_ = false;

    StatGroup stats_{"fault_injection"};
    Scalar bitflips_{"bitflips", "record bit-flip faults injected"};
    Scalar truncations_{"truncations", "trace truncation faults fired"};
    Scalar shortReads_{"short_reads", "short-read faults injected"};
    Scalar recordsDropped_{"records_dropped",
                           "records lost to short-read faults"};
};

} // namespace ebcp

#endif // EBCP_TRACE_FAULT_INJECTION_HH
