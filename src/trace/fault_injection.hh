/**
 * @file
 * A TraceSource wrapper that injects deterministic faults into the
 * record stream, for proving the simulator degrades instead of dying
 * on damaged input (the robustness analogue of the paper's best-effort
 * correlation-table reads: a lost record, like a lost table read, must
 * cost accuracy, not correctness).
 *
 * Faults (armed via FaultPlan, all seeded):
 *  - bit-flip: one random bit of a delivered record's payload fields
 *    flips, as an undetected media/conversion error would;
 *  - truncate: the source ends permanently after a configured number
 *    of records, as a truncated file would;
 *  - short-read: a small run of records vanishes, as a short read
 *    dropped on the floor would.
 *
 * Every delivered record is sanitized (see sanitizeRecord), so a flip
 * in an op/register field degrades to a Nop/NoReg rather than feeding
 * the timing model out-of-range indices.
 */

#ifndef EBCP_TRACE_FAULT_INJECTION_HH
#define EBCP_TRACE_FAULT_INJECTION_HH

#include "cpu/trace.hh"
#include "stats/group.hh"
#include "util/fault.hh"
#include "util/random.hh"

namespace ebcp
{

/** Wraps another TraceSource and injects the plan's trace faults. */
class FaultInjectingTraceSource : public TraceSource
{
  public:
    /** @p inner must outlive this wrapper. */
    FaultInjectingTraceSource(TraceSource &inner, const FaultPlan &plan);

    bool next(TraceRecord &rec) override;

    /** Restart both the wrapper's fault stream and the inner source,
     * reproducing the exact same fault sequence. */
    void reset() override;

    std::uint64_t bitflipsInjected() const { return bitflips_.value(); }
    std::uint64_t truncationsInjected() const
    {
        return truncations_.value();
    }
    std::uint64_t shortReadsInjected() const
    {
        return shortReads_.value();
    }
    std::uint64_t recordsDropped() const
    {
        return recordsDropped_.value();
    }

    StatGroup &stats() { return stats_; }

  private:
    void flipOneBit(TraceRecord &rec);

    TraceSource &inner_;
    FaultPlan plan_;
    Pcg32 rng_;
    std::uint64_t delivered_ = 0;
    bool truncated_ = false;

    StatGroup stats_{"fault_injection"};
    Scalar bitflips_{"bitflips", "record bit-flip faults injected"};
    Scalar truncations_{"truncations", "trace truncation faults fired"};
    Scalar shortReads_{"short_reads", "short-read faults injected"};
    Scalar recordsDropped_{"records_dropped",
                           "records lost to short-read faults"};
};

} // namespace ebcp

#endif // EBCP_TRACE_FAULT_INJECTION_HH
