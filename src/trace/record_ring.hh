/**
 * @file
 * A growable power-of-two ring buffer of trace records.
 *
 * SyntheticWorkload generates a whole transaction's records at once
 * and the core drains them one by one. A std::deque pays block
 * allocation/deallocation churn for that producer/consumer pattern;
 * this ring reaches a high-water capacity during the first few
 * transactions and then recycles the same storage forever -- zero
 * steady-state allocation on the record path. RingStats counts grows
 * so tests can assert exactly that.
 */

#ifndef EBCP_TRACE_RECORD_RING_HH
#define EBCP_TRACE_RECORD_RING_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/logging.hh"

namespace ebcp
{

/** Traffic/allocation counters of one ring. */
struct RingStats
{
    std::uint64_t pushes = 0;
    std::uint64_t pops = 0;
    std::uint64_t grows = 0; //!< capacity doublings (allocations)
};

/**
 * FIFO ring of T with power-of-two capacity. Grows by doubling when
 * full; never shrinks, so a warmed ring serves pushSlot()/popFront()
 * without touching the allocator.
 */
template <typename T>
class RecordRing
{
  public:
    explicit RecordRing(std::size_t initial_capacity = 64)
    {
        std::size_t cap = 16;
        while (cap < initial_capacity)
            cap <<= 1;
        slots_.resize(cap);
        mask_ = cap - 1;
    }

    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }
    std::size_t capacity() const { return slots_.size(); }

    /**
     * Append one element and return a reference to its slot. The slot
     * holds the previous occupant's (stale) value; the caller must
     * assign it.
     */
    T &
    pushSlot()
    {
        if (size_ == slots_.size())
            grow();
        T &slot = slots_[(head_ + size_) & mask_];
        ++size_;
        ++stats_.pushes;
        return slot;
    }

    /** Oldest element. */
    const T &
    front() const
    {
        panic_if(size_ == 0, "front() on an empty RecordRing");
        return slots_[head_];
    }

    /** Drop the oldest element (its slot is recycled, not destroyed). */
    void
    popFront()
    {
        panic_if(size_ == 0, "popFront() on an empty RecordRing");
        head_ = (head_ + 1) & mask_;
        --size_;
        ++stats_.pops;
    }

    /** Drop all elements; keeps the slot array (no deallocation). */
    void
    clear()
    {
        head_ = 0;
        size_ = 0;
    }

    /** @return element @p i, 0 = oldest (checkpoint iteration). */
    const T &
    at(std::size_t i) const
    {
        panic_if(i >= size_, "RecordRing index out of range");
        return slots_[(head_ + i) & mask_];
    }

    const RingStats &stats() const { return stats_; }
    void resetStats() { stats_ = {}; }

  private:
    void
    grow()
    {
        // Re-linearize into a doubled array with the oldest element
        // at index 0.
        const std::size_t new_cap = slots_.size() * 2;
        std::vector<T> next(new_cap);
        for (std::size_t i = 0; i < size_; ++i)
            next[i] = slots_[(head_ + i) & mask_];
        slots_ = std::move(next);
        mask_ = new_cap - 1;
        head_ = 0;
        ++stats_.grows;
    }

    std::vector<T> slots_;
    std::size_t mask_ = 0;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
    RingStats stats_;
};

} // namespace ebcp

#endif // EBCP_TRACE_RECORD_RING_HH
