/**
 * @file
 * A growable power-of-two ring buffer of trace records.
 *
 * SyntheticWorkload generates a whole transaction's records at once
 * and the core drains them one by one. A std::deque pays block
 * allocation/deallocation churn for that producer/consumer pattern;
 * this ring reaches a high-water capacity during the first few
 * transactions and then recycles the same storage forever -- zero
 * steady-state allocation on the record path. RingStats counts grows
 * so tests can assert exactly that.
 */

#ifndef EBCP_TRACE_RECORD_RING_HH
#define EBCP_TRACE_RECORD_RING_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/logging.hh"

namespace ebcp
{

/** Traffic/allocation counters of one ring. */
struct RingStats
{
    std::uint64_t pushes = 0;
    std::uint64_t pops = 0;
    std::uint64_t grows = 0;    //!< mid-run capacity doublings
    std::uint64_t reserves = 0; //!< deliberate pre-sizing allocations
};

/**
 * FIFO ring of T with power-of-two capacity. Grows by doubling when
 * full; never shrinks, so a warmed ring serves pushSlot()/popFront()
 * without touching the allocator.
 */
template <typename T>
class RecordRing
{
  public:
    explicit RecordRing(std::size_t initial_capacity = 64)
    {
        std::size_t cap = 16;
        while (cap < initial_capacity)
            cap <<= 1;
        slots_.resize(cap);
        mask_ = cap - 1;
    }

    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }
    std::size_t capacity() const { return slots_.size(); }

    /**
     * Append one element and return a reference to its slot. The slot
     * holds the previous occupant's (stale) value; the caller must
     * assign it.
     */
    T &
    pushSlot()
    {
        if (size_ == slots_.size())
            grow();
        T &slot = slots_[(head_ + size_) & mask_];
        ++size_;
        ++stats_.pushes;
        return slot;
    }

    /** Oldest element. */
    const T &
    front() const
    {
        panic_if(size_ == 0, "front() on an empty RecordRing");
        return slots_[head_];
    }

    /** Drop the oldest element (its slot is recycled, not destroyed). */
    void
    popFront()
    {
        panic_if(size_ == 0, "popFront() on an empty RecordRing");
        head_ = (head_ + 1) & mask_;
        --size_;
        ++stats_.pops;
    }

    /**
     * Copy the @p n oldest elements into @p out and drop them: one
     * bounds check and at most two contiguous copies (the ring can
     * wrap once), instead of n front()/popFront() round trips.
     */
    void
    drainInto(T *out, std::size_t n)
    {
        panic_if(n > size_, "drainInto() past the RecordRing size");
        const std::size_t cap = slots_.size();
        const std::size_t first = std::min(n, cap - head_);
        std::copy_n(slots_.data() + head_, first, out);
        std::copy_n(slots_.data(), n - first, out + first);
        head_ = (head_ + n) & mask_;
        size_ -= n;
        stats_.pops += n;
    }

    /**
     * Expose the oldest elements in place: @p *out points at the
     * first contiguous segment (the ring wraps at most once, so up to
     * two calls see everything). Nothing is popped -- pair with
     * popN() after the caller has consumed the span.
     *
     * @return the segment length (0 when empty).
     */
    std::size_t
    frontSpan(const T **out) const
    {
        *out = slots_.data() + head_;
        return std::min(size_, slots_.size() - head_);
    }

    /** Drop the @p n oldest elements without copying them out. */
    void
    popN(std::size_t n)
    {
        panic_if(n > size_, "popN() past the RecordRing size");
        head_ = (head_ + n) & mask_;
        size_ -= n;
        stats_.pops += n;
    }

    /**
     * Grow the slot array (power-of-two rounded) so @p n elements fit
     * without a mid-run grow(); counted separately from grows so the
     * steady-state zero-allocation assertions stay meaningful.
     */
    void
    reserve(std::size_t n)
    {
        std::size_t cap = slots_.size();
        while (cap < n)
            cap <<= 1;
        if (cap == slots_.size())
            return;
        std::vector<T> next(cap);
        for (std::size_t i = 0; i < size_; ++i)
            next[i] = slots_[(head_ + i) & mask_];
        slots_ = std::move(next);
        mask_ = cap - 1;
        head_ = 0;
        ++stats_.reserves;
    }

    /** Drop all elements; keeps the slot array (no deallocation). */
    void
    clear()
    {
        head_ = 0;
        size_ = 0;
    }

    /** @return element @p i, 0 = oldest (checkpoint iteration). */
    const T &
    at(std::size_t i) const
    {
        panic_if(i >= size_, "RecordRing index out of range");
        return slots_[(head_ + i) & mask_];
    }

    const RingStats &stats() const { return stats_; }
    void resetStats() { stats_ = {}; }

  private:
    void
    grow()
    {
        // Re-linearize into a doubled array with the oldest element
        // at index 0.
        const std::size_t new_cap = slots_.size() * 2;
        std::vector<T> next(new_cap);
        for (std::size_t i = 0; i < size_; ++i)
            next[i] = slots_[(head_ + i) & mask_];
        slots_ = std::move(next);
        mask_ = new_cap - 1;
        head_ = 0;
        ++stats_.grows;
    }

    std::vector<T> slots_;
    std::size_t mask_ = 0;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
    RingStats stats_;
};

} // namespace ebcp

#endif // EBCP_TRACE_RECORD_RING_HH
