/**
 * @file
 * The four commercial benchmarks of Section 4.2, as tuned synthetic
 * configurations. Tuning targets Table 1's per-workload signature
 * (CPI, epochs per 1000 instructions, L2 instruction and load miss
 * rates); EXPERIMENTS.md records achieved-vs-paper values.
 */

#ifndef EBCP_TRACE_WORKLOADS_HH
#define EBCP_TRACE_WORKLOADS_HH

#include <memory>
#include <string>
#include <vector>

#include "trace/synthetic_workload.hh"
#include "util/status.hh"

namespace ebcp
{

/** Large-scale OLTP database: data-miss heavy, medium MLP. */
WorkloadConfig databaseConfig(std::uint64_t seed = 1);

/** TPC-W transactional web: instruction-miss heavy, low MLP, low
 * overall miss rate. */
WorkloadConfig tpcwConfig(std::uint64_t seed = 2);

/** SPECjbb2005 middle-tier Java: tiny instruction footprint, load
 * misses with medium MLP. */
WorkloadConfig specjbbConfig(std::uint64_t seed = 3);

/** SPECjAppServer2004: the largest instruction footprint, moderate
 * data misses, low MLP. */
WorkloadConfig specjasConfig(std::uint64_t seed = 4);

/** Look up a workload by name ("database", "tpcw", "specjbb",
 * "specjas"); an unknown name yields NotFound with a nearest-name
 * suggestion. */
StatusOr<WorkloadConfig> tryWorkloadByName(const std::string &name,
                                           std::uint64_t seed = 0);

/** As tryWorkloadByName(), but an unknown name is fatal. */
WorkloadConfig workloadByName(const std::string &name,
                              std::uint64_t seed = 0);

/** The paper's benchmark suite, in presentation order. */
std::vector<std::string> workloadNames();

/** Construct the generator for a named workload (NotFound as above). */
StatusOr<std::unique_ptr<SyntheticWorkload>>
tryMakeWorkload(const std::string &name, std::uint64_t seed = 0);

/** As tryMakeWorkload(), but an unknown name is fatal. */
std::unique_ptr<SyntheticWorkload>
makeWorkload(const std::string &name, std::uint64_t seed = 0);

} // namespace ebcp

#endif // EBCP_TRACE_WORKLOADS_HH
