#include "trace/synthetic_workload.hh"

#include <algorithm>

#include "ckpt/containers.hh"
#include "util/logging.hh"

namespace ebcp
{

SyntheticWorkload::SyntheticWorkload(const WorkloadConfig &cfg)
    : cfg_(cfg), map_(cfg), rng_(cfg.seed),
      keys_(cfg.numChains, cfg.zipfSkew)
{
    fatal_if(cfg.txnTypes == 0, "workload needs transaction types");
    buildTypes();
    // Pre-size the record ring to an upper bound on one transaction's
    // record count (the high-water mark: generateTransaction() fills a
    // whole transaction whenever the buffer runs dry). Sized from the
    // config's worst-case op shape so the measured phase performs zero
    // ring growths -- the throughput bench and the steady-state
    // allocation test both assert grows == 0.
    const unsigned len_max =
        std::max({cfg.chaseLenMax, cfg.btreeLevels + 1,
                  cfg.scanLinesMax, 6u});
    const unsigned fill_max = std::max(cfg.fillerInstsMax, 10u);
    const std::size_t per_op =
        static_cast<std::size_t>(len_max) * (fill_max + 2) + 32;
    const std::size_t jitter_op =
        2 * (static_cast<std::size_t>(fill_max) + 2) + 32;
    buf_.reserve(cfg.opsPerTxnMax * (per_op + jitter_op) + 16);
    reset();
}

void
SyntheticWorkload::buildTypes()
{
    // Type construction uses its own RNG stream so that runtime
    // draws do not perturb the static shape.
    Pcg32 shape(cfg_.seed, 0x7ea7);
    types_.clear();
    types_.resize(cfg_.txnTypes);

    const double wsum = cfg_.mix.chase + cfg_.mix.btree + cfg_.mix.scan +
                        cfg_.mix.hot;
    fatal_if(wsum <= 0.0, "operation mix has zero weight");

    for (TxnType &t : types_) {
        const unsigned nops =
            shape.range(cfg_.opsPerTxnMin, cfg_.opsPerTxnMax);
        for (unsigned i = 0; i < nops; ++i) {
            OpDef op;
            const double w = shape.uniform() * wsum;
            if (w < cfg_.mix.chase) {
                op.kind = OpDef::Kind::Chase;
                op.len = shape.range(cfg_.chaseLenMin, cfg_.chaseLenMax);
                op.depBranch = shape.chance(cfg_.depBranchProb);
                op.fillerMin = cfg_.fillerInstsMin;
                op.fillerMax = cfg_.fillerInstsMax;
            } else if (w < cfg_.mix.chase + cfg_.mix.btree) {
                op.kind = OpDef::Kind::BTree;
                op.len = cfg_.btreeLevels;
                op.fillerMin = cfg_.fillerInstsMin;
                op.fillerMax = cfg_.fillerInstsMax;
            } else if (w < cfg_.mix.chase + cfg_.mix.btree +
                               cfg_.mix.scan) {
                op.kind = OpDef::Kind::Scan;
                op.len = shape.range(cfg_.scanLinesMin, cfg_.scanLinesMax);
                // Scans are tight loops: little code between loads,
                // so the independent misses overlap in the window.
                op.fillerMin = 4;
                op.fillerMax = 10;
            } else {
                op.kind = OpDef::Kind::Hot;
                op.len = shape.range(2, 6);
                op.fillerMin = cfg_.fillerInstsMin;
                op.fillerMax = cfg_.fillerInstsMax;
            }
            op.store = shape.chance(cfg_.storeFraction);
            // Static binding to a hot function; whether an instance
            // actually runs hot or cold code is decided per entity in
            // emitOp (so the choice recurs with the key).
            op.fn = shape.below(
                std::min(cfg_.hotFunctions, cfg_.numFunctions));
            t.ops.push_back(op);
        }
    }
}

void
SyntheticWorkload::reset()
{
    rng_.reseed(cfg_.seed);
    buf_.clear();
    dispatcherPc_ = map_.dispatcherBase();
    curPc_ = 0;
    fnBase_ = fnEnd_ = 0;
    blockLeft_ = 0;
    aluIdx_ = aluPhase_ = loadIdx_ = 0;
    sinceSerialize_ = 0;
    oneShot_ = 0;
}

bool
SyntheticWorkload::next(TraceRecord &rec)
{
    while (buf_.empty())
        generateTransaction();
    rec = buf_.front();
    buf_.popFront();
    return true;
}

std::size_t
SyntheticWorkload::peekSpan(const TraceRecord **out, std::size_t max)
{
    while (buf_.empty())
        generateTransaction();
    const std::size_t len = buf_.frontSpan(out);
    return len < max ? len : max;
}

void
SyntheticWorkload::consumeSpan(std::size_t n)
{
    buf_.popN(n);
}

std::size_t
SyntheticWorkload::nextBatch(TraceRecord *out, std::size_t max)
{
    // Drain in ring-sized gulps: one bounds check and a bulk copy per
    // buffered span instead of a front()/popFront() pair per record.
    std::size_t n = 0;
    while (n < max) {
        while (buf_.empty())
            generateTransaction();
        const std::size_t take = std::min(max - n, buf_.size());
        buf_.drainInto(out + n, take);
        n += take;
    }
    return max;
}

void
SyntheticWorkload::finishRecord(Addr pc)
{
    if (++sinceSerialize_ >= cfg_.serializeEvery) {
        sinceSerialize_ = 0;
        TraceRecord &s = buf_.pushSlot();
        s = TraceRecord{};
        s.pc = pc + 4;
        s.op = OpClass::Serialize;
    }
}

void
SyntheticWorkload::emitAlu()
{
    TraceRecord &r = beginRecord();
    const Addr pc = curPc_;
    r.pc = pc;
    curPc_ = pc + 4;
    r.op = OpClass::IntAlu;
    // Filler is mostly a dependent chain: commercial codes run at
    // CPI_perf around 1.2 (Table 1), not at peak superscalar IPC.
    r.dstReg = RegAlu0 + aluIdx_;
    r.srcReg0 = (aluPhase_ == 3) ? NoReg : RegAlu0 + aluPlus(23);
    r.srcReg1 = RegAlu0 + aluPlus(11);
    aluIdx_ = aluPlus(1);
    aluPhase_ = (aluPhase_ + 1) & 3;
    finishRecord(pc);
}

void
SyntheticWorkload::emitBranch(Addr target, bool noisy)
{
    TraceRecord &r = beginRecord();
    const Addr pc = curPc_;
    r.pc = pc;
    r.op = OpClass::Branch;
    r.taken = noisy ? (rng_.next() & 1) : true;
    r.target = target;
    r.srcReg0 = RegAlu0 + aluPlus(23);
    finishRecord(pc);
    // Taken or not, the next instruction in the trace is at `target`
    // for block-end branches (target == fall-through block start).
    curPc_ = target;
}

void
SyntheticWorkload::emitCode(unsigned n)
{
    for (unsigned i = 0; i < n; ++i) {
        if (blockLeft_ == 0) {
            // End of a basic block: branch to the next one (wrapping
            // inside the function to bound its footprint).
            Addr next = curPc_ + 4;
            if (next + cfg_.blockInsts * 4 >= fnEnd_)
                next = fnBase_;
            emitBranch(next, rng_.chance(cfg_.branchNoise));
            blockLeft_ = cfg_.blockInsts - 1;
        } else {
            emitAlu();
            --blockLeft_;
        }
    }
}

void
SyntheticWorkload::emitDispatcherStep()
{
    // A few hot dispatcher instructions between transactions/ops.
    curPc_ = dispatcherPc_;
    blockLeft_ = 1000; // the dispatcher has no block-end branches
    emitCode(3);
    dispatcherPc_ = curPc_;
    // Wrap within the dispatcher region, branching back to its start.
    if (dispatcherPc_ + 64 >=
        map_.dispatcherBase() + map_.dispatcherBytes()) {
        emitBranch(map_.dispatcherBase(), false);
        dispatcherPc_ = map_.dispatcherBase();
        curPc_ = dispatcherPc_;
    }
}

void
SyntheticWorkload::emitCall(Addr fn_base)
{
    TraceRecord &r = beginRecord();
    const Addr pc = dispatcherPc_;
    r.pc = pc;
    r.op = OpClass::Call;
    r.taken = true;
    r.target = fn_base;
    finishRecord(pc);
    dispatcherPc_ = pc + 4; // the RAS return point is call PC + 4

    fnBase_ = fn_base;
    fnEnd_ = fn_base + cfg_.funcBytes;
    curPc_ = fn_base;
    blockLeft_ = cfg_.blockInsts - 1;
}

void
SyntheticWorkload::emitReturn()
{
    TraceRecord &r = beginRecord();
    const Addr pc = curPc_;
    r.pc = pc;
    r.op = OpClass::Return;
    r.taken = true;
    r.target = dispatcherPc_; // matches the pushed call PC + 4
    finishRecord(pc);
    curPc_ = dispatcherPc_;
}

void
SyntheticWorkload::emitLoad(Addr addr, std::uint8_t dst, std::uint8_t src)
{
    TraceRecord &r = beginRecord();
    const Addr pc = curPc_;
    r.pc = pc;
    curPc_ = pc + 4;
    r.op = OpClass::Load;
    r.addr = addr;
    r.dstReg = dst;
    r.srcReg0 = src;
    finishRecord(pc);
    if (blockLeft_ > 0)
        --blockLeft_;
}

void
SyntheticWorkload::emitStore(Addr addr, std::uint8_t src)
{
    TraceRecord &r = beginRecord();
    const Addr pc = curPc_;
    r.pc = pc;
    curPc_ = pc + 4;
    r.op = OpClass::Store;
    r.addr = addr;
    r.srcReg0 = src;
    r.srcReg1 = RegAlu0 + aluPlus(5);
    finishRecord(pc);
    if (blockLeft_ > 0)
        --blockLeft_;
}

void
SyntheticWorkload::emitOp(const OpDef &op, std::uint32_t key,
                          unsigned op_idx, bool force_cold)
{
    // Derive this op's identity from the transaction key and a small
    // per-op group -- *not* the transaction type. Like rows in an
    // OLTP database, the same entity's objects are shared by every
    // transaction type that touches the entity, so any recurrence of
    // the key replays recurring addresses. A configurable fraction of
    // ops instead uses a one-shot key (transaction-local data),
    // bounding coverage.
    std::uint32_t id;
    if (force_cold ||
        (op.kind != OpDef::Kind::Hot &&
         rng_.chance(cfg_.coldKeyFraction))) {
        id = static_cast<std::uint32_t>(
            mix64(0xc01dULL << 32 | ++oneShot_));
    } else {
        id = static_cast<std::uint32_t>(
            mix64(static_cast<std::uint64_t>(key) * 8 + (op_idx & 7)) &
            0x7fffffff);
    }

    // Hot entities run hot (mostly resident) code; a deterministic
    // per-entity fraction walks a key-derived cold function instead,
    // so instruction-miss sequences recur with the key and the
    // instruction footprint scales with numFunctions.
    const std::uint64_t fnh = mix64(0xf00dULL << 32 | id);
    const bool hot_fn =
        (fnh % 10000) <
        static_cast<std::uint64_t>(cfg_.codeHotFraction * 10000.0);
    const std::uint32_t fn =
        hot_fn ? op.fn
               : static_cast<std::uint32_t>(fnh % cfg_.numFunctions);

    emitDispatcherStep();
    emitCall(map_.functionBase(fn));

    // Address-generation ALU feeding the base register.
    {
        TraceRecord &r = beginRecord();
        const Addr pc = curPc_;
        r.pc = pc;
        curPc_ = pc + 4;
        r.op = OpClass::IntAlu;
        r.dstReg = RegBase;
        // The previous op's chased value feeds this op's address
        // computation (an OLTP transaction's serial spine); scans
        // then fan out in parallel underneath it.
        r.srcReg0 = RegChase;
        finishRecord(pc);
    }

    // Filler lengths are deterministic per (op slot, access index):
    // a static instruction sequence has fixed load PCs, which
    // PC-localized prefetchers (GHB PC/DC, SMS) legitimately exploit.
    unsigned fill_n = 0;
    auto filler = [&]() {
        const std::uint64_t h =
            mix64((static_cast<std::uint64_t>(op.fn) << 24) ^
                  (static_cast<std::uint64_t>(op_idx) << 8) ^ fill_n++);
        return op.fillerMin +
               static_cast<unsigned>(h % (op.fillerMax - op.fillerMin + 1));
    };

    Addr last_line = 0;
    switch (op.kind) {
      case OpDef::Kind::Chase: {
        const std::uint32_t chain = id;
        // A pointer-chase loop: every hop executes the same body, so
        // the chasing load has one fixed PC (as `while (p) p =
        // p->next` does) -- the stream PC-localized prefetchers key
        // on.
        const unsigned body = filler();
        const Addr loop_head = curPc_;
        for (unsigned h = 0; h < op.len; ++h) {
            curPc_ = loop_head;
            blockLeft_ = body + 2; // no block-end branch inside
            emitCode(body);
            last_line = map_.chainNode(chain, h);
            emitLoad(last_line, RegChase,
                     h == 0 ? RegBase : RegChase);
            // Loop back-branch: taken until the final hop.
            TraceRecord &br = beginRecord();
            const Addr pc = curPc_;
            const bool taken = (h + 1 < op.len);
            br.pc = pc;
            br.op = OpClass::Branch;
            br.taken = taken;
            br.target = loop_head;
            br.srcReg0 = RegChase;
            finishRecord(pc);
            curPc_ = taken ? loop_head : pc + 4;
        }
        blockLeft_ = cfg_.blockInsts - 1;
        if (op.depBranch) {
            emitCode(2);
            // A branch consuming the chased value: if the chase
            // missed off-chip and this mispredicts, the window
            // terminates on it (Section 2.1).
            TraceRecord &r = beginRecord();
            const Addr pc = curPc_;
            const Addr target = pc + 4 + 4;
            r.pc = pc;
            r.op = OpClass::Branch;
            r.taken = rng_.chance(0.7);
            r.target = target;
            r.srcReg0 = RegChase;
            finishRecord(pc);
            curPc_ = target;
        }
        break;
      }
      case OpDef::Kind::BTree: {
        const std::uint32_t k = id;
        // Root: hot, then one dependent node per level; the walk
        // extends the serial spine.
        emitCode(filler());
        emitLoad(map_.btreeNode(0, k), RegChase, RegBase);
        for (unsigned l = 1; l <= cfg_.btreeLevels; ++l) {
            emitCode(filler());
            last_line = map_.btreeNode(l, k);
            emitLoad(last_line, RegChase, RegChase);
        }
        break;
      }
      case OpDef::Kind::Scan: {
        const Addr page = map_.recordPage(id);
        std::uint8_t last_dst = RegBase;
        // A record-scan loop: one load PC striding through the page's
        // lines (what stream prefetchers and SMS legitimately see).
        const unsigned body = filler();
        const Addr loop_head = curPc_;
        for (unsigned l = 0; l < op.len; ++l) {
            curPc_ = loop_head;
            blockLeft_ = body + 2;
            emitCode(body);
            last_line = page + static_cast<Addr>(l) * 64;
            last_dst = RegLoad0 + loadIdx_;
            if (++loadIdx_ == 12)
                loadIdx_ = 0;
            emitLoad(last_line, last_dst, RegBase);
            TraceRecord &br = beginRecord();
            const Addr pc = curPc_;
            const bool taken = (l + 1 < op.len);
            br.pc = pc;
            br.op = OpClass::Branch;
            br.taken = taken;
            br.target = loop_head;
            br.srcReg0 = last_dst;
            finishRecord(pc);
            curPc_ = taken ? loop_head : pc + 4;
        }
        blockLeft_ = cfg_.blockInsts - 1;
        // The scan's aggregate extends the serial spine, so the next
        // op's first access cannot overlap this scan (stable epoch
        // partitioning, like a query result feeding the next step).
        {
            TraceRecord &r = beginRecord();
            const Addr pc = curPc_;
            r.pc = pc;
            curPc_ = pc + 4;
            r.op = OpClass::IntAlu;
            r.dstReg = RegChase;
            r.srcReg0 = last_dst;
            finishRecord(pc);
        }
        break;
      }
      case OpDef::Kind::Hot: {
        for (unsigned l = 0; l < op.len; ++l) {
            emitCode(filler());
            last_line = map_.hotLine(
                static_cast<std::uint32_t>(mix64(id + l)));
            emitLoad(last_line, RegLoad0 + loadIdx_, RegBase);
            if (++loadIdx_ == 12)
                loadIdx_ = 0;
        }
        break;
      }
    }

    if (op.store && last_line) {
        emitCode(3);
        emitStore(last_line, RegBase);
    }

    emitCode(rng_.range(4, 10));
    emitReturn();
}

void
SyntheticWorkload::generateTransaction()
{
    // Entity-type affinity: an entity is always processed by the same
    // transaction type (a customer replays the same interaction), so
    // a recurring key replays the *whole* miss sequence, not just the
    // addresses. Per-instance variability still comes from cold
    // (one-shot) ops, branch noise and cache state.
    const std::uint32_t key = keys_.sample(rng_);
    const unsigned type = static_cast<unsigned>(
        mix64(0x7e57ULL << 32 | key) % cfg_.txnTypes);

    // Interrupt/jitter op: a short one-shot access injected at a
    // random position. This models the positional noise real systems
    // exhibit (interrupts, lock retries, buffer-pool misses): exact
    // successor *distances* are unstable even when the sequence
    // itself recurs, which distinguishes positional (depth-keyed)
    // predictors from windowed ones.
    OpDef jitter;
    jitter.kind = OpDef::Kind::Chase;
    jitter.len = 1 + (rng_.next() & 1);
    jitter.fn = 0;
    jitter.fillerMin = cfg_.fillerInstsMin;
    jitter.fillerMax = cfg_.fillerInstsMax;

    for (unsigned i = 0; i < types_[type].ops.size(); ++i) {
        if (rng_.chance(cfg_.jitterProb))
            emitOp(jitter, key, (type << 4) | 15, true);
        emitOp(types_[type].ops[i], key, (type << 4) | i);
    }
}

void
SyntheticWorkload::ckpt(ckpt::Archiver &ar)
{
    ckpt::ckptPcg32(ar, rng_);
    std::uint64_t pending = buf_.size();
    ar.u64(pending);
    if (ar.saving()) {
        for (std::uint64_t i = 0; i < pending; ++i) {
            TraceRecord rec = buf_.at(i);
            ckptRecord(ar, rec);
        }
    } else {
        buf_.clear();
        for (std::uint64_t i = 0; i < pending && ar.ok(); ++i) {
            TraceRecord rec;
            ckptRecord(ar, rec);
            if (ar.ok())
                buf_.pushSlot() = rec;
        }
    }
    ar.u64(curPc_);
    ar.u64(fnBase_);
    ar.u64(fnEnd_);
    ar.u64(dispatcherPc_);
    ar.uns(blockLeft_);
    ar.uns(aluIdx_);
    ar.uns(aluPhase_);
    ar.uns(loadIdx_);
    ar.u64(sinceSerialize_);
    ar.u64(oneShot_);
}

} // namespace ebcp
