#include "core/table_allocation.hh"

#include "ckpt/archiver.hh"
#include "verify/audit.hh"

namespace ebcp
{

namespace
{
/** Simulated physical base of OS-granted prefetcher regions. */
constexpr Addr RegionBase = 0x40'0000'0000ULL;
} // namespace

TableAllocation::TableAllocation(std::uint64_t region_bytes,
                                 Tick retry_interval)
    : regionBytes_(region_bytes), retryInterval_(retry_interval),
      osPolicy_([](Tick) { return true; }),
      stats_("table_alloc")
{
    stats_.add(allocations_);
    stats_.add(reclaims_);
    stats_.add(failedRetries_);
}

void
TableAllocation::setOsPolicy(std::function<bool(Tick)> policy)
{
    osPolicy_ = std::move(policy);
}

bool
TableAllocation::tryAllocate(Tick now)
{
    if (!osPolicy_(now)) {
        ++failedRetries_;
        return false;
    }
    ++allocations_;
    base_ = RegionBase;
    state_ = State::Active;
    return true;
}

bool
TableAllocation::requestInitial(Tick now)
{
    if (state_ == State::Active)
        return true;
    if (!tryAllocate(now)) {
        state_ = State::Inactive;
        nextRetry_ = now + retryInterval_;
        return false;
    }
    return true;
}

bool
TableAllocation::active(Tick now)
{
    if (state_ == State::Active)
        return true;
    if (state_ == State::Inactive && now >= nextRetry_) {
        if (tryAllocate(now))
            return true;
        nextRetry_ = now + retryInterval_;
    }
    return false;
}

void
TableAllocation::reclaim(Tick now)
{
    if (state_ != State::Active)
        return;
    ++reclaims_;
    state_ = State::Inactive;
    base_ = InvalidAddr;
    nextRetry_ = now + retryInterval_;
}

void
TableAllocation::audit(AuditContext &ctx) const
{
    const bool hasBase = base_ != InvalidAddr;
    if (state_ == State::Active)
        ctx.check(hasBase, "base_matches_state",
                  "Active without an OS-granted base address");
    else
        ctx.check(!hasBase, "base_matches_state",
                  "base 0x", std::hex, base_, std::dec,
                  " still held while not Active");
}

void
TableAllocation::corruptForTest()
{
    state_ = State::Active;
    base_ = InvalidAddr;
}


void
TableAllocation::ckpt(ckpt::Archiver &ar)
{
    ar.enum32(state_);
    if (!ar.saving() && ar.ok() &&
        state_ != State::Unallocated && state_ != State::Active &&
        state_ != State::Inactive) {
        ar.fail(corruptionError("checkpoint allocation state ",
                                static_cast<unsigned>(state_),
                                " is not a valid State"));
        return;
    }
    ar.u64(base_);
    ar.u64(nextRetry_);
    stats_.ckpt(ar);
}

} // namespace ebcp
