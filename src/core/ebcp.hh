/**
 * @file
 * The Epoch-Based Correlation Prefetcher (Section 3).
 *
 * Operation per epoch boundary (the prefetcher's own epoch sense,
 * which treats prefetch-buffer hits as the off-chip accesses they
 * *would have been* -- Section 3.4.3 triggers lookups on "the first
 * L2 instruction or load miss (or prefetch buffer hit) in a new
 * epoch"):
 *
 *  1. Training: with the EMAB holding epochs i..i+3 (i+3 just ended),
 *     the first event address of epoch i keys the table and the miss
 *     addresses of epochs i+2 and i+3 become the entry's prefetch
 *     addresses (older epoch first). Epoch i+1 is deliberately
 *     skipped: prefetches for it could never be timely given the
 *     main-memory table read. The EBCP-minus ablation records epochs
 *     i+1 and i+2 instead.
 *  2. Prediction: the new epoch's first event address keys a table
 *     read (a low-priority memory access whose latency hides under
 *     the current epoch); on a tag match, prefetches for all stored
 *     addresses issue when the read returns.
 *
 * Memory traffic per epoch: one prediction read, one update
 * read-modify-write, plus one LRU-refresh write per prefetch-buffer
 * hit (Section 3.4.4), all at low priority.
 */

#ifndef EBCP_CORE_EBCP_HH
#define EBCP_CORE_EBCP_HH

#include <memory>
#include <vector>

#include "core/correlation_table.hh"
#include "core/emab.hh"
#include "core/table_allocation.hh"
#include "epoch/epoch_tracker.hh"
#include "prefetch/prefetcher.hh"
#include "util/status.hh"
#include "util/fault.hh"
#include "util/random.hh"

namespace ebcp
{

/** EBCP configuration knobs (the Section 5 design space). */
struct EbcpConfig
{
    std::uint64_t tableEntries = 1ULL << 20; //!< correlation table size
    unsigned prefetchDegree = 8; //!< max prefetches per table match
    unsigned emabEntries = 4;
    unsigned emabAddrsPerEntry = 32;

    /**
     * EBCP-minus (Figure 9 ablation): also record the epoch
     * immediately after the trigger, wasting entry slots on untimely
     * prefetches.
     */
    bool minusVariant = false;

    /**
     * Section 3.4.2's alternative implementation: use *all* misses of
     * the oldest EMAB epoch (not just the first) to insert/update
     * table entries. Costs extra table traffic and capacity but makes
     * the keying robust to epoch-boundary drift.
     */
    bool trainAllOldestMisses = false;

    /** Ticks between re-allocation attempts while inactive. */
    Tick reallocRetryInterval = 1'000'000;

    /**
     * Number of per-core epoch-state instances (EMAB + epoch
     * tracker). The paper's future-work CMP design: the prefetcher
     * control sits in front of the core-to-L2 crossbar, so it can
     * keep one EMAB per core and track each thread's epoch stream
     * separately while sharing the main-memory correlation table.
     * With 1 (the default), all cores share one epoch stream -- which
     * degrades under interleaving exactly like a memory-side scheme.
     */
    unsigned numCoreStates = 1;

    /**
     * Idealized on-chip correlation table: lookups are instantaneous
     * and cost no memory traffic. Not buildable at commercial
     * working-set sizes (the paper's whole point); provided for the
     * Section 3.1/3.2 ablation of *why* the epoch-skip and the
     * memory-resident table matter.
     */
    bool onChipTable = false;

    /**
     * Fault-injection plan for the table read path (table-drop /
     * table-delay kinds): demonstrates that a lost or late
     * correlation-table read costs coverage, never correctness.
     */
    FaultPlan faults;

    /** Coded rejection of nonsense values (factory gate). */
    Status validate() const;
};

/** The epoch-based correlation prefetcher control. */
class EpochBasedPrefetcher : public Prefetcher
{
  public:
    explicit EpochBasedPrefetcher(const EbcpConfig &cfg);

    void observeAccess(const L2AccessInfo &info) override;
    void observePrefetchHit(Addr line_addr, std::uint64_t corr_index,
                            Tick when) override;

    /**
     * One sink for the control's EMAB/table events plus one
     * EpochSpan row per core-state tracker.
     */
    void attachTraceLog(TraceLog &log) override;

    /** The simulated OS reclaims the table region (failure injection). */
    void reclaimTable(Tick now);

    /**
     * Re-derive the EBCP's structural invariants: the correlation
     * table, its allocation state (a populated table requires an
     * active region), and each core state's EMAB + epoch tracker.
     */
    void audit(AuditContext &ctx) const override;

    /** Serialize or restore the full EBCP state: table, allocation,
     * per-core EMABs and epoch trackers, fault RNG and counters. */
    void ckpt(ckpt::Archiver &ar) override;

    /** Lifetime table reads this control intended to issue. The
     * engine's served count balances against it: a shortfall means a
     * read vanished between the control and the memory system (the
     * table-drop fault does exactly that). */
    std::uint64_t tableReadAttemptsLifetime() const
    {
        return tableReadAttempts_;
    }

    /** Largest observed latency of a served table read; bounded by
     * MainMemory::maxLowPriorityReadLatency() unless something (the
     * table-delay fault) stretched a read beyond the channel's drop
     * horizon. */
    Tick maxTableReadTicks() const { return maxTableReadTicks_; }

    CorrelationTable &table() { return table_; }
    TableAllocation &allocation() { return alloc_; }
    const Emab &emab(unsigned core = 0) const
    {
        return states_[core]->emab;
    }
    /** Mutable EMAB access for audit trip-tests. */
    Emab &emabForTest(unsigned core = 0) { return states_[core]->emab; }
    const EbcpConfig &config() const { return cfg_; }

  private:
    /** Per-core epoch state (one instance in single-core configs). */
    struct CoreState
    {
        Emab emab;
        EpochTracker tracker;

        CoreState(unsigned emab_entries, unsigned addrs_per_entry)
            : emab(emab_entries, addrs_per_entry)
        {}
    };

    CoreState &stateFor(unsigned core_id);

    void onEpochStart(const L2AccessInfo &info, EpochId epoch,
                      CoreState &cs);

    /** Trace the EMAB eviction+insertion a beginEpoch will cause. */
    void traceEmabTurnover(const CoreState &cs, EpochId epoch,
                           const L2AccessInfo &info);

    /** engine_->tableRead() with the plan's table faults applied. */
    MemAccessResult faultyTableRead(Tick when, Addr key);

    /** Gather the training payload into payloadScratch_ (older epoch
     * first, deduplicated, truncated to the table's slot count). */
    const std::vector<Addr> &trainingPayload(const CoreState &cs);

    EbcpConfig cfg_;
    // unique_ptr storage: CoreState holds stat groups with interior
    // pointers, so the objects must never move.
    std::vector<std::unique_ptr<CoreState>> states_;
    CorrelationTable table_;
    TableAllocation alloc_;
    bool osRequested_ = false;
    Pcg32 faultRng_;

    std::uint64_t tableReadAttempts_ = 0;
    Tick maxTableReadTicks_ = 0;

    // Scratch vectors: reused across epochs so the per-epoch path
    // allocates nothing once warmed.
    std::vector<Addr> lookupOut_;
    std::vector<Addr> payloadScratch_;
    std::vector<Addr> keysScratch_;

    Scalar epochStarts_{"epoch_starts", "epoch triggers handled"};
    Scalar trainings_{"trainings", "table training updates performed"};
    Scalar predictions_{"predictions", "prediction lookups issued"};
    Scalar matches_{"matches", "prediction lookups that matched"};
    Scalar prefetchesRequested_{"prefetches_requested",
                                "line prefetches handed to the engine"};
    Scalar inactiveSkips_{"inactive_skips",
                          "epoch boundaries skipped while inactive"};
    Scalar droppedTableReads_{"dropped_table_reads",
                              "table reads lost to bus saturation"};
    Scalar injectedReadDrops_{"injected_read_drops",
                              "table reads lost to fault injection"};
    Scalar injectedReadDelays_{"injected_read_delays",
                               "table reads delayed by fault injection"};
};

} // namespace ebcp

#endif // EBCP_CORE_EBCP_HH
