/**
 * @file
 * The main-memory correlation table (Section 3.4.2, Figure 3).
 *
 * Functionally the table is direct-mapped: index = hash(key) mod
 * entries, one tag per entry, N prefetch-address slots managed LRU.
 * Timing is *not* modelled here -- the prefetcher issues the
 * low-priority memory reads/writes through its PrefetchEngine; this
 * class answers what those accesses would find.
 *
 * The simulator-host storage is a lazily populated hash map, so the
 * idealized 8M-entry / 32-address configuration costs memory only for
 * entries actually touched.
 *
 * Host layout is SoA: the hash map's payload is a small POD record
 * (tag + arena block handle + live count) and every entry's successor
 * slots live in a shared flat arena, carved into fixed
 * addrsPerEntry-sized blocks that are allocated on first touch and
 * recycled in place on tag reallocation. Lookups therefore touch one
 * small map payload plus one contiguous slot block -- no per-entry
 * vector headers, no scattered heap nodes, and zero steady-state
 * allocation once the working set's blocks exist.
 */

#ifndef EBCP_CORE_CORRELATION_TABLE_HH
#define EBCP_CORE_CORRELATION_TABLE_HH

#include <cstdint>
#include <vector>

#include "stats/group.hh"
#include "util/flat_map.hh"
#include "util/types.hh"

namespace ebcp
{

namespace ckpt
{
class Archiver;
}

class AuditContext;

/** Geometry of the main-memory correlation table. */
struct CorrTableConfig
{
    std::uint64_t entries = 1ULL << 20; //!< 1M entries (64MB) default
    unsigned addrsPerEntry = 8;         //!< prefetch-address slots
    unsigned transferBytes = 64;        //!< memory transfer unit

    /**
     * Bytes moved per table read/write: tag + LRU (8B) plus 6B per
     * compressed prefetch address (Section 3.4.2), rounded up to the
     * transfer unit.
     */
    unsigned entryTransferBytes() const;

    /** Total main-memory footprint in bytes. */
    std::uint64_t
    footprintBytes() const
    {
        return entries * entryTransferBytes();
    }
};

/** The correlation table proper. */
class CorrelationTable
{
  public:
    explicit CorrelationTable(const CorrTableConfig &cfg);

    /** Direct-mapped index of @p key. */
    std::uint64_t indexOf(Addr key) const;

    /**
     * Read the entry indexed by @p key.
     *
     * @param out on a tag match, filled with the entry's prefetch
     *            addresses, most recently used first
     * @param index_out the entry index (valid regardless of match)
     * @return true on a tag match
     */
    bool lookup(Addr key, std::vector<Addr> &out,
                std::uint64_t *index_out = nullptr);

    /**
     * Insert/update the entry for @p key with @p addrs (ordered
     * oldest-epoch-first, the paper's priority rule; the list should
     * already be deduplicated and truncated to addrsPerEntry).
     *
     * A tag mismatch reallocates the entry; a match refreshes present
     * addresses and LRU-replaces absent ones, never evicting a slot
     * written by this same update.
     */
    void update(Addr key, const std::vector<Addr> &addrs);

    /**
     * Refresh the LRU stamp of @p line_addr within entry @p index
     * (prefetch-buffer hit feedback, Section 3.4.3).
     * @return true if the address was found in the entry.
     */
    bool refreshLru(std::uint64_t index, Addr line_addr);

    /** Drop all contents (allocation reclaimed / new run). */
    void clear();

    /** Distinct entries currently resident in host storage. */
    std::size_t populatedEntries() const { return entries_.size(); }

    const CorrTableConfig &config() const { return cfg_; }
    StatGroup &stats() { return stats_; }

    /** Host hash-map probe counters (throughput bench). */
    const FlatMapStats &mapStats() const { return entries_.stats(); }

    /** Re-derive structural invariants: population within the
     * configured entry count, every resident entry keyed by the index
     * its own tag hashes to, successor slots within the per-entry cap
     * and free of duplicates, and stamps/generations never from the
     * future. */
    void audit(AuditContext &ctx) const;

    /** Test-only: plant an entry whose tag indexes elsewhere so
     * audit() trips. */
    void corruptForTest();

    /** Serialize or restore all mutable state (checkpointing). */
    void ckpt(ckpt::Archiver &ar);

  private:
    struct Slot
    {
        Addr addr = InvalidAddr;
        std::uint64_t stamp = 0;
        std::uint64_t gen = 0; //!< update generation that wrote it
    };

    /** Arena block handle of an entry that has no slots yet. */
    static constexpr std::uint32_t kNoBlock = ~std::uint32_t{0};

    /**
     * Map payload: tag plus a handle into the shared slot arena. POD
     * and 16 bytes, so the host map's SoA value array stays dense.
     */
    struct Entry
    {
        Addr tag = InvalidAddr;
        std::uint32_t base = kNoBlock; //!< first slot in slotPool_
        std::uint32_t count = 0;       //!< live slots at base
    };

    /** Arena block of @p e, allocating one on first use. */
    Slot *slotsOf(Entry &e);
    const Slot *slotsOf(const Entry &e) const;

    CorrTableConfig cfg_;
    FlatMap<Entry> entries_;
    /** Shared successor-slot arena: fixed addrsPerEntry-sized blocks,
     * never individually freed (clear() resets the whole pool). */
    std::vector<Slot> slotPool_;
    //! lookup() MRU-sort scratch: (stamp, addr), allocation-free once
    //! warmed
    std::vector<std::pair<std::uint64_t, Addr>> byStamp_;
    std::uint64_t stampCounter_ = 0;
    std::uint64_t updateGen_ = 0;

    StatGroup stats_;
    Scalar lookups_{"lookups", "table reads for prediction"};
    Scalar tagHits_{"tag_hits", "lookups that matched the tag"};
    Scalar updates_{"updates", "entry updates"};
    Scalar reallocs_{"reallocs", "entries reallocated on tag mismatch"};
    Scalar slotReplacements_{"slot_replacements",
                             "prefetch-address slots LRU-replaced"};
    Scalar lruRefreshes_{"lru_refreshes",
                         "slots refreshed on prefetch-buffer hits"};
};

} // namespace ebcp

#endif // EBCP_CORE_CORRELATION_TABLE_HH
