/**
 * @file
 * The Epoch Miss Addresses Buffer (Section 3.4.2).
 *
 * A four-entry circular buffer; each entry holds the L2 instruction
 * and load miss addresses of one epoch. The newest entry accumulates
 * the current epoch; when a new epoch begins the oldest entry (epoch
 * i, with the buffer holding i..i+3) supplies the correlation-table
 * key and the two newest entries (epochs i+2, i+3) supply the
 * prefetch addresses to record.
 *
 * Each entry also remembers the first *event* address of its epoch --
 * miss or prefetch-buffer hit -- as the key. Keying on the first
 * event rather than the first miss keeps the correlation chain stable
 * once prefetching starts succeeding: the trigger address of a fully
 * covered epoch is a prefetch-buffer hit, and it must index the same
 * table entry it was trained under.
 */

#ifndef EBCP_CORE_EMAB_HH
#define EBCP_CORE_EMAB_HH

#include <vector>

#include "util/circular_buffer.hh"
#include "util/types.hh"

namespace ebcp
{

namespace ckpt
{
class Archiver;
}

class AuditContext;

/** Recorded contents of one epoch. */
struct EmabEntry
{
    EpochId epoch = 0;
    Addr keyAddr = InvalidAddr;   //!< first event (miss or pf-buf hit)
    std::vector<Addr> missAddrs;  //!< L2 inst/load miss line addresses
};

/** The EMAB circular buffer. */
class Emab
{
  public:
    /**
     * @param entries number of epochs retained (4 in the paper)
     * @param addrs_per_entry cap on recorded misses per epoch
     */
    explicit Emab(unsigned entries = 4, unsigned addrs_per_entry = 32);

    /** Start recording a new epoch whose first event is @p key_addr. */
    void beginEpoch(EpochId epoch, Addr key_addr);

    /** Record an L2 miss address into the current epoch's entry. */
    void recordMiss(Addr line_addr);

    /** @return true once @c entries epochs have been recorded. */
    bool full() const { return ring_.full(); }
    std::size_t size() const { return ring_.size(); }

    /** Entry @p i, 0 = oldest. */
    const EmabEntry &entry(std::size_t i) const { return ring_.at(i); }

    /** The entry currently accumulating misses. */
    const EmabEntry &current() const { return ring_.back(); }

    /** Forget everything (table reallocation, new run). */
    void clear() { ring_.clear(); }

    unsigned addrsPerEntry() const { return addrsPerEntry_; }

    /** Re-derive structural invariants: occupancy within the ring's
     * capacity, per-epoch address lists within their cap, and epoch
     * ids strictly increasing oldest-to-newest (which also makes
     * every recorded trigger's epoch unique). */
    void audit(AuditContext &ctx) const;

    /** Test-only: duplicate an epoch id (or overfill the current
     * entry's address list) so audit() trips. */
    void corruptForTest();

    /** Serialize or restore all mutable state (checkpointing). */
    void ckpt(ckpt::Archiver &ar);

  private:
    CircularBuffer<EmabEntry> ring_;
    unsigned addrsPerEntry_;
};

} // namespace ebcp

#endif // EBCP_CORE_EMAB_HH
