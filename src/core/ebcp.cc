#include "core/ebcp.hh"

#include <algorithm>

#include "ckpt/containers.hh"
#include "util/logging.hh"
#include "verify/audit.hh"

namespace ebcp
{

Status
EbcpConfig::validate() const
{
    if (tableEntries == 0)
        return invalidArgError("ebcp: table_entries must be nonzero");
    if (prefetchDegree == 0)
        return invalidArgError(
            "ebcp: degree=0 would never prefetch; use the null "
            "prefetcher to disable prefetching");
    if (emabEntries == 0 || emabAddrsPerEntry == 0)
        return invalidArgError("ebcp: EMAB geometry ", emabEntries,
                               "x", emabAddrsPerEntry,
                               " must be nonzero in both dimensions");
    if (numCoreStates == 0 || numCoreStates > 32)
        return invalidArgError("ebcp: num_core_states ", numCoreStates,
                               " outside [1, 32]");
    if (reallocRetryInterval == 0)
        return invalidArgError(
            "ebcp: realloc_retry_interval must be nonzero");
    return Status();
}

EpochBasedPrefetcher::EpochBasedPrefetcher(const EbcpConfig &cfg)
    : Prefetcher("ebcp"),
      cfg_(cfg),
      table_({cfg.tableEntries, cfg.prefetchDegree, 64}),
      alloc_(table_.config().footprintBytes(), cfg.reallocRetryInterval),
      faultRng_(cfg.faults.seed,
                static_cast<std::uint64_t>(FaultStream::Table))
{
    fatal_if(cfg.numCoreStates == 0, "EBCP needs at least one core");
    for (unsigned i = 0; i < cfg.numCoreStates; ++i)
        states_.push_back(std::make_unique<CoreState>(
            cfg.emabEntries, cfg.emabAddrsPerEntry));
    stats().add(epochStarts_);
    stats().add(trainings_);
    stats().add(predictions_);
    stats().add(matches_);
    stats().add(prefetchesRequested_);
    stats().add(inactiveSkips_);
    stats().add(droppedTableReads_);
    stats().add(injectedReadDrops_);
    stats().add(injectedReadDelays_);
    stats().addChild(table_.stats());
    stats().addChild(alloc_.stats());
    stats().addChild(states_[0]->tracker.stats());
}

MemAccessResult
EpochBasedPrefetcher::faultyTableRead(Tick when, Addr key)
{
    // Injected table-read faults model the real failure modes of a
    // best-effort memory-resident table -- a read lost to saturation
    // or arriving too late -- and must degrade coverage only.
    ++tableReadAttempts_;
    if (cfg_.faults.tableDrop && faultRng_.chance(cfg_.faults.rate)) {
        ++injectedReadDrops_;
        return MemAccessResult{when, when, true};
    }
    MemAccessResult rd = engine_->tableRead(when);
    if (!rd.dropped && cfg_.faults.tableDelay &&
        faultRng_.chance(cfg_.faults.rate)) {
        ++injectedReadDelays_;
        rd.complete += cfg_.faults.tableDelayTicks;
    }
    if (!rd.dropped) {
        maxTableReadTicks_ = std::max(maxTableReadTicks_,
                                      rd.complete - when);
        EBCP_TRACE_EVENT(trace_, TraceEventKind::TableRead, when,
                         rd.complete - when, key);
    }
    return rd;
}

void
EpochBasedPrefetcher::attachTraceLog(TraceLog &log)
{
    // Per-core epoch rows use tid = core id; the control's own
    // EMAB/table row sits above them at tid 32.
    trace_ = log.sink("ebcp", 32);
    for (unsigned i = 0; i < states_.size(); ++i)
        states_[i]->tracker.setTraceSink(
            log.sink("ebcp/core" + std::to_string(i), i));
}

void
EpochBasedPrefetcher::traceEmabTurnover(const CoreState &cs, EpochId epoch,
                                        const L2AccessInfo &info)
{
#ifndef EBCP_DISABLE_EVENT_TRACE
    if (!trace_)
        return;
    if (cs.emab.full()) {
        const EmabEntry &old = cs.emab.entry(0);
        EBCP_TRACE_EVENT(trace_, TraceEventKind::EmabEvict, info.when, 0,
                         old.epoch, old.missAddrs.size());
    }
    EBCP_TRACE_EVENT(trace_, TraceEventKind::EmabInsert, info.when, 0,
                     epoch, info.lineAddr);
#else
    (void)cs;
    (void)epoch;
    (void)info;
#endif
}

EpochBasedPrefetcher::CoreState &
EpochBasedPrefetcher::stateFor(unsigned core_id)
{
    return *states_[core_id < states_.size() ? core_id
                                             : states_.size() - 1];
}

void
EpochBasedPrefetcher::observeAccess(const L2AccessInfo &info)
{
    panic_if(!engine_, "EBCP used without an engine");

    // Only inst/load accesses that left the chip -- or would have,
    // absent prefetching -- are epoch-relevant.
    const bool relevant = info.offChip || info.prefBufHit;
    if (!relevant)
        return;

    // Prefetch-buffer hits count as epoch events at their actual
    // times (Section 3.4.3: the first miss *or prefetch buffer hit*
    // in a new epoch triggers the lookup). Using actual completion
    // times keeps the lookup chain running at the compressed pace of
    // covered execution, so the prefetcher stays ahead instead of
    // starving every few epochs.
    CoreState &cs = stateFor(info.coreId);
    EpochEvent ev = cs.tracker.observe(info.when, info.complete);

    if (ev.newEpoch)
        onEpochStart(info, ev.epoch, cs);

    if (info.offChip)
        cs.emab.recordMiss(info.lineAddr);
}

const std::vector<Addr> &
EpochBasedPrefetcher::trainingPayload(const CoreState &cs)
{
    // EMAB holds epochs i..i+3 (oldest first). Regular EBCP records
    // epochs i+2 and i+3 (entries 2, 3); EBCP-minus records i+1 and
    // i+2 (entries 1, 2).
    const std::size_t first = cfg_.minusVariant ? 1 : 2;
    std::vector<Addr> &payload = payloadScratch_;
    payload.clear();
    for (std::size_t e = first; e <= first + 1; ++e) {
        for (Addr a : cs.emab.entry(e).missAddrs) {
            if (std::find(payload.begin(), payload.end(), a) ==
                payload.end())
                payload.push_back(a);
            if (payload.size() >= table_.config().addrsPerEntry)
                return payload;
        }
    }
    return payload;
}

void
EpochBasedPrefetcher::onEpochStart(const L2AccessInfo &info,
                                   EpochId epoch, CoreState &cs)
{
    ++epochStarts_;

    if (!osRequested_) {
        alloc_.requestInitial(info.when);
        osRequested_ = true;
    }
    if (!alloc_.active(info.when)) {
        ++inactiveSkips_;
        // Keep recording epochs so the EMAB is warm on reactivation.
        traceEmabTurnover(cs, epoch, info);
        cs.emab.beginEpoch(epoch, info.lineAddr);
        return;
    }

    // --- 1. Training: record epochs i+2/i+3 under epoch i's key. ---
    if (cs.emab.full()) {
        std::vector<Addr> &keys = keysScratch_;
        keys.clear();
        keys.push_back(cs.emab.entry(0).keyAddr);
        if (cfg_.trainAllOldestMisses) {
            // Section 3.4.2's alternative implementation: every miss
            // of the oldest epoch keys an entry, making the scheme
            // robust to epoch-boundary drift between encounters.
            for (Addr a : cs.emab.entry(0).missAddrs)
                if (a != keys.front())
                    keys.push_back(a);
        }
        const std::vector<Addr> &payload = trainingPayload(cs);
        if (!payload.empty()) {
            for (Addr key : keys) {
                if (key == InvalidAddr)
                    continue;
                // Read-modify-write of the table entry, both low
                // priority (Section 3.4.4's second read + first
                // write). An idealized on-chip table costs nothing.
                if (!cfg_.onChipTable) {
                    MemAccessResult rd = faultyTableRead(info.when, key);
                    if (rd.dropped) {
                        ++droppedTableReads_;
                        continue;
                    }
                    table_.update(key, payload);
                    engine_->tableWrite(rd.complete);
                    EBCP_TRACE_EVENT(trace_, TraceEventKind::TableWrite,
                                     rd.complete, 0, key);
                } else {
                    table_.update(key, payload);
                }
                ++trainings_;
            }
        }
    }

    // --- 2. Open the new epoch in the EMAB. ---
    traceEmabTurnover(cs, epoch, info);
    cs.emab.beginEpoch(epoch, info.lineAddr);

    // --- 3. Prediction lookup keyed by the new epoch's trigger. ---
    ++predictions_;
    MemAccessResult rd{info.when, info.when, false};
    if (!cfg_.onChipTable) {
        rd = faultyTableRead(info.when, info.lineAddr);
        if (rd.dropped) {
            ++droppedTableReads_;
            return;
        }
    }
    std::uint64_t index = 0;
    if (table_.lookup(info.lineAddr, lookupOut_, &index)) {
        ++matches_;
        const std::size_t n =
            std::min<std::size_t>(lookupOut_.size(), cfg_.prefetchDegree);
        for (std::size_t i = 0; i < n; ++i) {
            engine_->issuePrefetch(lookupOut_[i], rd.complete, index,
                                   true);
            ++prefetchesRequested_;
        }
    }
}

void
EpochBasedPrefetcher::observePrefetchHit(Addr line_addr,
                                         std::uint64_t corr_index,
                                         Tick when)
{
    if (table_.refreshLru(corr_index, line_addr)) {
        // LRU write-back of the entry (Section 3.4.4's second write).
        if (!cfg_.onChipTable) {
            engine_->tableWrite(when);
            EBCP_TRACE_EVENT(trace_, TraceEventKind::TableWrite, when, 0,
                             line_addr);
        }
    }
}

void
EpochBasedPrefetcher::reclaimTable(Tick now)
{
    alloc_.reclaim(now);
    table_.clear();
    for (auto &cs : states_)
        cs->emab.clear();
}

void
EpochBasedPrefetcher::audit(AuditContext &ctx) const
{
    table_.audit(ctx);
    alloc_.audit(ctx);
    for (const auto &cs : states_) {
        cs->emab.audit(ctx);
        cs->tracker.audit(ctx);
    }
    // reclaimTable() clears the table when the region goes away, so
    // residual content implies the region is live.
    ctx.check(table_.populatedEntries() == 0 ||
                  alloc_.state() == TableAllocation::State::Active,
              "populated_table_requires_active_region",
              table_.populatedEntries(),
              " populated entries while the table region is not active");
}


void
EpochBasedPrefetcher::ckpt(ckpt::Archiver &ar)
{
    Prefetcher::ckpt(ar);
    std::uint32_t nstates = static_cast<std::uint32_t>(states_.size());
    ar.u32(nstates);
    if (!ar.saving() && ar.ok() && nstates != states_.size()) {
        ar.fail(invalidArgError("checkpoint holds ", nstates,
                                " EBCP core states but ",
                                states_.size(), " are configured"));
        return;
    }
    // CoreState objects are pinned behind unique_ptrs (stat groups
    // hold interior pointers), so restore happens strictly in place.
    for (auto &cs : states_) {
        cs->emab.ckpt(ar);
        cs->tracker.ckpt(ar);
        if (!ar.ok())
            return;
    }
    table_.ckpt(ar);
    alloc_.ckpt(ar);
    ar.boolean(osRequested_);
    ckpt::ckptPcg32(ar, faultRng_);
    ar.u64(tableReadAttempts_);
    ar.u64(maxTableReadTicks_);
}

} // namespace ebcp
