/**
 * @file
 * The correlation table's main-memory allocation life cycle
 * (Section 3.4.1).
 *
 * On start-up the prefetcher control traps to the operating system
 * for a contiguous physical region and receives a base address. If
 * the OS later reclaims the region the prefetcher goes *inactive*,
 * and periodically re-requests memory; a successful re-request
 * reactivates it (with an empty table, since the contents were
 * lost). The simulated OS here is a simple policy object so tests
 * and failure-injection experiments can drive every transition.
 */

#ifndef EBCP_CORE_TABLE_ALLOCATION_HH
#define EBCP_CORE_TABLE_ALLOCATION_HH

#include <functional>

#include "stats/group.hh"
#include "util/types.hh"

namespace ebcp
{

namespace ckpt
{
class Archiver;
}

class AuditContext;

/** Allocation state machine for the main-memory table. */
class TableAllocation
{
  public:
    enum class State
    {
        Unallocated, //!< before the first successful request
        Active,      //!< region held; prefetcher may operate
        Inactive,    //!< region reclaimed; waiting to retry
    };

    /**
     * @param region_bytes size to request from the "OS"
     * @param retry_interval ticks between re-requests while inactive
     */
    TableAllocation(std::uint64_t region_bytes, Tick retry_interval);

    /**
     * Install the OS allocation policy: called with the current tick,
     * returns true if the OS grants the region. Defaults to always
     * granting.
     */
    void setOsPolicy(std::function<bool(Tick)> policy);

    /** Initial allocation request (start-up trap). */
    bool requestInitial(Tick now);

    /**
     * @return true if the prefetcher may operate at @p now. While
     * inactive this automatically retries once per retry interval.
     */
    bool active(Tick now);

    /** The OS reclaims the region (memory pressure). */
    void reclaim(Tick now);

    State state() const { return state_; }
    Addr baseAddr() const { return base_; }
    std::uint64_t regionBytes() const { return regionBytes_; }

    StatGroup &stats() { return stats_; }

    /** Re-derive the state machine's invariant: a base address is
     * held exactly while Active. */
    void audit(AuditContext &ctx) const;

    /** Test-only: claim Active without a base so audit() trips. */
    void corruptForTest();

    /** Serialize or restore all mutable state (checkpointing). The
     * OS policy is configuration, reattached by the owner. */
    void ckpt(ckpt::Archiver &ar);

  private:
    bool tryAllocate(Tick now);

    std::uint64_t regionBytes_;
    Tick retryInterval_;
    State state_ = State::Unallocated;
    Addr base_ = InvalidAddr;
    Tick nextRetry_ = 0;
    std::function<bool(Tick)> osPolicy_;

    StatGroup stats_;
    Scalar allocations_{"allocations", "successful region allocations"};
    Scalar reclaims_{"reclaims", "regions reclaimed by the OS"};
    Scalar failedRetries_{"failed_retries", "re-requests the OS denied"};
};

} // namespace ebcp

#endif // EBCP_CORE_TABLE_ALLOCATION_HH
