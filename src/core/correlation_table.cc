#include "core/correlation_table.hh"

#include <algorithm>
#include <utility>

#include "util/bitfield.hh"
#include "util/logging.hh"
#include "ckpt/containers.hh"
#include "verify/audit.hh"

namespace ebcp
{

unsigned
CorrTableConfig::entryTransferBytes() const
{
    const unsigned raw = 8 + 6 * addrsPerEntry;
    return static_cast<unsigned>(alignUp(raw, transferBytes));
}

CorrelationTable::CorrelationTable(const CorrTableConfig &cfg)
    : cfg_(cfg), stats_("corr_table")
{
    fatal_if(cfg.entries == 0, "correlation table needs entries");
    fatal_if(!isPowerOf2(cfg.entries),
             "correlation table entry count must be a power of two");
    fatal_if(cfg.addrsPerEntry == 0,
             "correlation table entries need address slots");
    stats_.add(lookups_);
    stats_.add(tagHits_);
    stats_.add(updates_);
    stats_.add(reallocs_);
    stats_.add(slotReplacements_);
    stats_.add(lruRefreshes_);
}

std::uint64_t
CorrelationTable::indexOf(Addr key) const
{
    return mix64(key) & (cfg_.entries - 1);
}

CorrelationTable::Slot *
CorrelationTable::slotsOf(Entry &e)
{
    if (e.base == kNoBlock) {
        // Carve a fresh fixed-size block off the arena. Blocks are
        // never returned individually -- a tag reallocation reuses the
        // entry's existing block -- so bases stay stable for the life
        // of the run (clear() resets the whole pool).
        panic_if(slotPool_.size() + cfg_.addrsPerEntry >
                     ~std::uint32_t{0},
                 "correlation-table slot arena exceeds u32 handles");
        if (slotPool_.size() == slotPool_.capacity()) {
            // Jump straight to the arena's configured bound (one
            // block per table entry): a single virtual allocation the
            // OS backs lazily, instead of repeated doubling reallocs
            // that copy the whole live arena on the update hot path.
            const std::uint64_t bound =
                std::min<std::uint64_t>(cfg_.entries,
                                        ~std::uint32_t{0} /
                                            cfg_.addrsPerEntry) *
                cfg_.addrsPerEntry;
            slotPool_.reserve(static_cast<std::size_t>(bound));
        }
        e.base = static_cast<std::uint32_t>(slotPool_.size());
        slotPool_.resize(slotPool_.size() + cfg_.addrsPerEntry);
    }
    return slotPool_.data() + e.base;
}

const CorrelationTable::Slot *
CorrelationTable::slotsOf(const Entry &e) const
{
    return e.base == kNoBlock ? nullptr : slotPool_.data() + e.base;
}

bool
CorrelationTable::lookup(Addr key, std::vector<Addr> &out,
                         std::uint64_t *index_out)
{
    ++lookups_;
    const std::uint64_t idx = indexOf(key);
    if (index_out)
        *index_out = idx;

    out.clear();
    const Entry *e = entries_.find(idx);
    if (!e || e->tag != key)
        return false;

    ++tagHits_;
    // MRU-first, so a degree-limited prefetch takes the freshest
    // addresses. Sorted through a member scratch vector so the
    // per-lookup path allocates nothing once warmed (stamps are
    // unique, so the order is deterministic).
    const Slot *slots = slotsOf(*e);
    byStamp_.clear();
    for (std::uint32_t i = 0; i < e->count; ++i)
        byStamp_.emplace_back(slots[i].stamp, slots[i].addr);
    std::sort(byStamp_.begin(), byStamp_.end(),
              [](const auto &a, const auto &b) {
                  return a.first > b.first;
              });
    for (const auto &[stamp, addr] : byStamp_)
        out.push_back(addr);
    return true;
}

void
CorrelationTable::update(Addr key, const std::vector<Addr> &addrs)
{
    if (addrs.empty())
        return;

    ++updates_;
    const std::uint64_t idx = indexOf(key);
    Entry &e = entries_[idx];

    if (e.tag != key) {
        if (e.tag != InvalidAddr)
            ++reallocs_;
        e.tag = key;
        e.count = 0; // the arena block (if any) is reused in place
    }

    Slot *slots = slotsOf(e);
    ++updateGen_;
    for (Addr a : addrs) {
        Slot *found = nullptr;
        for (std::uint32_t i = 0; i < e.count; ++i) {
            if (slots[i].addr == a) {
                found = &slots[i];
                break;
            }
        }
        if (found) {
            found->stamp = ++stampCounter_;
            found->gen = updateGen_;
            continue;
        }
        if (e.count < cfg_.addrsPerEntry) {
            slots[e.count++] = {a, ++stampCounter_, updateGen_};
            continue;
        }
        // LRU-replace, but never a slot this update already wrote:
        // once every slot is fresh, remaining (younger-epoch)
        // addresses are dropped -- the paper's older-epoch priority.
        Slot *victim = nullptr;
        for (std::uint32_t i = 0; i < e.count; ++i) {
            if (slots[i].gen == updateGen_)
                continue;
            if (!victim || slots[i].stamp < victim->stamp)
                victim = &slots[i];
        }
        if (!victim)
            break;
        *victim = {a, ++stampCounter_, updateGen_};
        ++slotReplacements_;
    }
}

bool
CorrelationTable::refreshLru(std::uint64_t index, Addr line_addr)
{
    Entry *e = entries_.find(index);
    if (!e)
        return false;
    Slot *slots = slotsOf(*e);
    for (std::uint32_t i = 0; i < e->count; ++i) {
        if (slots[i].addr == line_addr) {
            slots[i].stamp = ++stampCounter_;
            ++lruRefreshes_;
            return true;
        }
    }
    return false;
}

void
CorrelationTable::clear()
{
    entries_.clear();
    slotPool_.clear(); // keeps capacity; every block handle is dead
}

void
CorrelationTable::audit(AuditContext &ctx) const
{
    ctx.check(entries_.size() <= cfg_.entries,
              "population_within_capacity", entries_.size(),
              " resident entries in a ", cfg_.entries, "-entry table");
    const std::string mapErr = entries_.integrityError();
    ctx.check(mapErr.empty(), "host_map_intact", mapErr);
    ctx.check(slotPool_.size() % cfg_.addrsPerEntry == 0,
              "arena_block_aligned", "slot arena holds ",
              slotPool_.size(), " slots, not a multiple of the ",
              cfg_.addrsPerEntry, "-slot block size");
    std::vector<std::uint32_t> bases;
    entries_.forEach([&](std::uint64_t idx, const Entry &e) {
        if (!ctx.check(idx < cfg_.entries, "index_in_range", "entry ",
                       idx, " outside a ", cfg_.entries, "-entry table"))
            return;
        if (e.tag != InvalidAddr)
            ctx.check(indexOf(e.tag) == idx, "tag_indexes_home",
                      "entry ", idx, " holds tag 0x", std::hex, e.tag,
                      std::dec, " which hashes to entry ",
                      indexOf(e.tag), " -- lookups can never hit it");
        ctx.check(e.count <= cfg_.addrsPerEntry,
                  "slots_within_entry_cap", "entry ", idx, " holds ",
                  e.count, " successor slots, cap is ",
                  cfg_.addrsPerEntry);
        if (e.base == kNoBlock) {
            ctx.check(e.count == 0, "blockless_entry_empty", "entry ",
                      idx, " counts ", e.count,
                      " slots but owns no arena block");
            return;
        }
        if (!ctx.check(e.base % cfg_.addrsPerEntry == 0 &&
                           e.base + cfg_.addrsPerEntry <=
                               slotPool_.size(),
                       "block_within_arena", "entry ", idx,
                       " block base ", e.base, " outside the ",
                       slotPool_.size(), "-slot arena"))
            return;
        bases.push_back(e.base);
        const Slot *slots = slotsOf(e);
        const std::uint32_t n =
            std::min<std::uint32_t>(e.count, cfg_.addrsPerEntry);
        for (std::uint32_t i = 0; i < n; ++i) {
            ctx.check(slots[i].stamp <= stampCounter_,
                      "stamp_not_from_future", "entry ", idx, " slot ",
                      i, " stamp ", slots[i].stamp,
                      " exceeds counter ", stampCounter_);
            ctx.check(slots[i].gen <= updateGen_,
                      "generation_not_from_future", "entry ", idx,
                      " slot ", i, " generation ", slots[i].gen,
                      " exceeds counter ", updateGen_);
            for (std::uint32_t j = i + 1; j < n; ++j)
                ctx.check(slots[i].addr != slots[j].addr,
                          "no_duplicate_successors", "entry ", idx,
                          " records successor 0x", std::hex,
                          slots[i].addr, std::dec, " twice");
        }
    });
    std::sort(bases.begin(), bases.end());
    for (std::size_t i = 1; i < bases.size(); ++i)
        ctx.check(bases[i] != bases[i - 1], "blocks_not_shared",
                  "two entries own arena block ", bases[i],
                  " -- updates to one corrupt the other");
}

void
CorrelationTable::corruptForTest()
{
    // Plant an entry at its tag's home index plus one: the tag can
    // never be looked up there, so tag_indexes_home trips.
    const Addr tag = 0x5EED;
    const std::uint64_t idx = (indexOf(tag) + 1) & (cfg_.entries - 1);
    Entry &e = entries_[idx];
    e.tag = tag;
    Slot *slots = slotsOf(e);
    if (e.count == 0)
        slots[e.count++] = {0x1000, ++stampCounter_, updateGen_};
}


void
CorrelationTable::ckpt(ckpt::Archiver &ar)
{
    // Arena block handles are host-run-local, so the checkpoint
    // stores each entry's slots by value; restore re-carves blocks in
    // insertion order. Handle values differ across save/restore but
    // nothing observable depends on them (slot order within an entry
    // is preserved exactly).
    ckpt::ckptFlatMap(ar, entries_, [&](ckpt::Archiver &a, Entry &e) {
        a.u64(e.tag);
        std::uint64_t n = e.count;
        a.u64(n);
        if (!a.ok())
            return;
        if (a.saving()) {
            const Slot *slots = slotsOf(std::as_const(e));
            for (std::uint64_t i = 0; i < n; ++i) {
                Slot s = slots[i];
                a.u64(s.addr);
                a.u64(s.stamp);
                a.u64(s.gen);
            }
        } else {
            if (n > cfg_.addrsPerEntry) {
                a.fail(corruptionError(
                    "checkpoint correlation-table entry holds ", n,
                    " slots but the configured cap is ",
                    cfg_.addrsPerEntry));
                return;
            }
            Slot *slots = n ? slotsOf(e) : nullptr;
            for (std::uint64_t i = 0; i < n; ++i) {
                Slot s;
                a.u64(s.addr);
                a.u64(s.stamp);
                a.u64(s.gen);
                if (!a.ok())
                    return;
                slots[i] = s;
            }
            e.count = static_cast<std::uint32_t>(n);
        }
    });
    ar.u64(stampCounter_);
    ar.u64(updateGen_);
    stats_.ckpt(ar);
}

} // namespace ebcp
