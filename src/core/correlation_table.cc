#include "core/correlation_table.hh"

#include <algorithm>

#include "util/bitfield.hh"
#include "util/logging.hh"
#include "ckpt/containers.hh"
#include "verify/audit.hh"

namespace ebcp
{

unsigned
CorrTableConfig::entryTransferBytes() const
{
    const unsigned raw = 8 + 6 * addrsPerEntry;
    return static_cast<unsigned>(alignUp(raw, transferBytes));
}

CorrelationTable::CorrelationTable(const CorrTableConfig &cfg)
    : cfg_(cfg), stats_("corr_table")
{
    fatal_if(cfg.entries == 0, "correlation table needs entries");
    fatal_if(!isPowerOf2(cfg.entries),
             "correlation table entry count must be a power of two");
    fatal_if(cfg.addrsPerEntry == 0,
             "correlation table entries need address slots");
    stats_.add(lookups_);
    stats_.add(tagHits_);
    stats_.add(updates_);
    stats_.add(reallocs_);
    stats_.add(slotReplacements_);
    stats_.add(lruRefreshes_);
}

std::uint64_t
CorrelationTable::indexOf(Addr key) const
{
    return mix64(key) & (cfg_.entries - 1);
}

bool
CorrelationTable::lookup(Addr key, std::vector<Addr> &out,
                         std::uint64_t *index_out)
{
    ++lookups_;
    const std::uint64_t idx = indexOf(key);
    if (index_out)
        *index_out = idx;

    out.clear();
    const Entry *e = entries_.find(idx);
    if (!e || e->tag != key)
        return false;

    ++tagHits_;
    // MRU-first, so a degree-limited prefetch takes the freshest
    // addresses. Sorted through a member scratch vector so the
    // per-lookup path allocates nothing once warmed (stamps are
    // unique, so the order is deterministic).
    byStamp_.clear();
    for (const Slot &s : e->slots)
        byStamp_.push_back(&s);
    std::sort(byStamp_.begin(), byStamp_.end(),
              [](const Slot *a, const Slot *b) {
                  return a->stamp > b->stamp;
              });
    for (const Slot *s : byStamp_)
        out.push_back(s->addr);
    return true;
}

void
CorrelationTable::update(Addr key, const std::vector<Addr> &addrs)
{
    if (addrs.empty())
        return;

    ++updates_;
    const std::uint64_t idx = indexOf(key);
    Entry &e = entries_[idx];

    if (e.tag != key) {
        if (e.tag != InvalidAddr)
            ++reallocs_;
        e.tag = key;
        e.slots.clear();
    }

    ++updateGen_;
    for (Addr a : addrs) {
        auto found = std::find_if(e.slots.begin(), e.slots.end(),
                                  [a](const Slot &s) {
                                      return s.addr == a;
                                  });
        if (found != e.slots.end()) {
            found->stamp = ++stampCounter_;
            found->gen = updateGen_;
            continue;
        }
        if (e.slots.size() < cfg_.addrsPerEntry) {
            e.slots.push_back({a, ++stampCounter_, updateGen_});
            continue;
        }
        // LRU-replace, but never a slot this update already wrote:
        // once every slot is fresh, remaining (younger-epoch)
        // addresses are dropped -- the paper's older-epoch priority.
        Slot *victim = nullptr;
        for (Slot &s : e.slots) {
            if (s.gen == updateGen_)
                continue;
            if (!victim || s.stamp < victim->stamp)
                victim = &s;
        }
        if (!victim)
            break;
        *victim = {a, ++stampCounter_, updateGen_};
        ++slotReplacements_;
    }
}

bool
CorrelationTable::refreshLru(std::uint64_t index, Addr line_addr)
{
    Entry *e = entries_.find(index);
    if (!e)
        return false;
    for (Slot &s : e->slots) {
        if (s.addr == line_addr) {
            s.stamp = ++stampCounter_;
            ++lruRefreshes_;
            return true;
        }
    }
    return false;
}

void
CorrelationTable::clear()
{
    entries_.clear();
}

void
CorrelationTable::audit(AuditContext &ctx) const
{
    ctx.check(entries_.size() <= cfg_.entries,
              "population_within_capacity", entries_.size(),
              " resident entries in a ", cfg_.entries, "-entry table");
    const std::string mapErr = entries_.integrityError();
    ctx.check(mapErr.empty(), "host_map_intact", mapErr);
    entries_.forEach([&](std::uint64_t idx, const Entry &e) {
        if (!ctx.check(idx < cfg_.entries, "index_in_range", "entry ",
                       idx, " outside a ", cfg_.entries, "-entry table"))
            return;
        if (e.tag != InvalidAddr)
            ctx.check(indexOf(e.tag) == idx, "tag_indexes_home",
                      "entry ", idx, " holds tag 0x", std::hex, e.tag,
                      std::dec, " which hashes to entry ",
                      indexOf(e.tag), " -- lookups can never hit it");
        ctx.check(e.slots.size() <= cfg_.addrsPerEntry,
                  "slots_within_entry_cap", "entry ", idx, " holds ",
                  e.slots.size(), " successor slots, cap is ",
                  cfg_.addrsPerEntry);
        for (std::size_t i = 0; i < e.slots.size(); ++i) {
            ctx.check(e.slots[i].stamp <= stampCounter_,
                      "stamp_not_from_future", "entry ", idx, " slot ",
                      i, " stamp ", e.slots[i].stamp,
                      " exceeds counter ", stampCounter_);
            ctx.check(e.slots[i].gen <= updateGen_,
                      "generation_not_from_future", "entry ", idx,
                      " slot ", i, " generation ", e.slots[i].gen,
                      " exceeds counter ", updateGen_);
            for (std::size_t j = i + 1; j < e.slots.size(); ++j)
                ctx.check(e.slots[i].addr != e.slots[j].addr,
                          "no_duplicate_successors", "entry ", idx,
                          " records successor 0x", std::hex,
                          e.slots[i].addr, std::dec, " twice");
        }
    });
}

void
CorrelationTable::corruptForTest()
{
    // Plant an entry at its tag's home index plus one: the tag can
    // never be looked up there, so tag_indexes_home trips.
    const Addr tag = 0x5EED;
    const std::uint64_t idx = (indexOf(tag) + 1) & (cfg_.entries - 1);
    Entry &e = entries_[idx];
    e.tag = tag;
    if (e.slots.empty())
        e.slots.push_back({0x1000, ++stampCounter_, updateGen_});
}


void
CorrelationTable::ckpt(ckpt::Archiver &ar)
{
    ckpt::ckptFlatMap(ar, entries_, [](ckpt::Archiver &a, Entry &e) {
        a.u64(e.tag);
        a.vec(e.slots, [](ckpt::Archiver &sa, Slot &sl) {
            sa.u64(sl.addr);
            sa.u64(sl.stamp);
            sa.u64(sl.gen);
        });
    });
    ar.u64(stampCounter_);
    ar.u64(updateGen_);
    stats_.ckpt(ar);
}

} // namespace ebcp
