#include "core/correlation_table.hh"

#include <algorithm>

#include "util/bitfield.hh"
#include "util/logging.hh"

namespace ebcp
{

unsigned
CorrTableConfig::entryTransferBytes() const
{
    const unsigned raw = 8 + 6 * addrsPerEntry;
    return static_cast<unsigned>(alignUp(raw, transferBytes));
}

CorrelationTable::CorrelationTable(const CorrTableConfig &cfg)
    : cfg_(cfg), stats_("corr_table")
{
    fatal_if(cfg.entries == 0, "correlation table needs entries");
    fatal_if(!isPowerOf2(cfg.entries),
             "correlation table entry count must be a power of two");
    fatal_if(cfg.addrsPerEntry == 0,
             "correlation table entries need address slots");
    stats_.add(lookups_);
    stats_.add(tagHits_);
    stats_.add(updates_);
    stats_.add(reallocs_);
    stats_.add(slotReplacements_);
    stats_.add(lruRefreshes_);
}

std::uint64_t
CorrelationTable::indexOf(Addr key) const
{
    return mix64(key) & (cfg_.entries - 1);
}

bool
CorrelationTable::lookup(Addr key, std::vector<Addr> &out,
                         std::uint64_t *index_out)
{
    ++lookups_;
    const std::uint64_t idx = indexOf(key);
    if (index_out)
        *index_out = idx;

    out.clear();
    auto it = entries_.find(idx);
    if (it == entries_.end() || it->second.tag != key)
        return false;

    ++tagHits_;
    // MRU-first, so a degree-limited prefetch takes the freshest
    // addresses.
    std::vector<const Slot *> by_stamp;
    by_stamp.reserve(it->second.slots.size());
    for (const Slot &s : it->second.slots)
        by_stamp.push_back(&s);
    std::sort(by_stamp.begin(), by_stamp.end(),
              [](const Slot *a, const Slot *b) {
                  return a->stamp > b->stamp;
              });
    for (const Slot *s : by_stamp)
        out.push_back(s->addr);
    return true;
}

void
CorrelationTable::update(Addr key, const std::vector<Addr> &addrs)
{
    if (addrs.empty())
        return;

    ++updates_;
    const std::uint64_t idx = indexOf(key);
    Entry &e = entries_[idx];

    if (e.tag != key) {
        if (e.tag != InvalidAddr)
            ++reallocs_;
        e.tag = key;
        e.slots.clear();
    }

    ++updateGen_;
    for (Addr a : addrs) {
        auto found = std::find_if(e.slots.begin(), e.slots.end(),
                                  [a](const Slot &s) {
                                      return s.addr == a;
                                  });
        if (found != e.slots.end()) {
            found->stamp = ++stampCounter_;
            found->gen = updateGen_;
            continue;
        }
        if (e.slots.size() < cfg_.addrsPerEntry) {
            e.slots.push_back({a, ++stampCounter_, updateGen_});
            continue;
        }
        // LRU-replace, but never a slot this update already wrote:
        // once every slot is fresh, remaining (younger-epoch)
        // addresses are dropped -- the paper's older-epoch priority.
        Slot *victim = nullptr;
        for (Slot &s : e.slots) {
            if (s.gen == updateGen_)
                continue;
            if (!victim || s.stamp < victim->stamp)
                victim = &s;
        }
        if (!victim)
            break;
        *victim = {a, ++stampCounter_, updateGen_};
        ++slotReplacements_;
    }
}

bool
CorrelationTable::refreshLru(std::uint64_t index, Addr line_addr)
{
    auto it = entries_.find(index);
    if (it == entries_.end())
        return false;
    for (Slot &s : it->second.slots) {
        if (s.addr == line_addr) {
            s.stamp = ++stampCounter_;
            ++lruRefreshes_;
            return true;
        }
    }
    return false;
}

void
CorrelationTable::clear()
{
    entries_.clear();
}

} // namespace ebcp
