#include "core/emab.hh"

#include "ckpt/containers.hh"
#include "util/logging.hh"
#include "verify/audit.hh"

namespace ebcp
{

Emab::Emab(unsigned entries, unsigned addrs_per_entry)
    : ring_(entries), addrsPerEntry_(addrs_per_entry)
{
    fatal_if(entries < 2, "EMAB needs at least two entries");
    fatal_if(addrs_per_entry == 0, "EMAB entries must hold addresses");
}

void
Emab::beginEpoch(EpochId epoch, Addr key_addr)
{
    // Reuse the evicted entry's slot in place: the address vector
    // keeps its capacity, so after the first lap around the ring an
    // epoch begin allocates nothing.
    EmabEntry &e = ring_.pushSlot();
    e.epoch = epoch;
    e.keyAddr = key_addr;
    e.missAddrs.clear();
    e.missAddrs.reserve(addrsPerEntry_);
}

void
Emab::recordMiss(Addr line_addr)
{
    if (ring_.empty())
        return; // no epoch open yet (run prologue)
    EmabEntry &cur = ring_.back();
    if (cur.missAddrs.size() < addrsPerEntry_)
        cur.missAddrs.push_back(line_addr);
}

void
Emab::audit(AuditContext &ctx) const
{
    ctx.check(ring_.size() <= ring_.capacity(),
              "occupancy_within_capacity", ring_.size(),
              " epochs retained in a ", ring_.capacity(), "-entry EMAB");
    for (std::size_t i = 0; i < ring_.size(); ++i) {
        const EmabEntry &e = ring_.at(i);
        ctx.check(e.missAddrs.size() <= addrsPerEntry_,
                  "addrs_within_entry_cap", "epoch ", e.epoch,
                  " recorded ", e.missAddrs.size(),
                  " addresses, cap is ", addrsPerEntry_);
        if (i > 0)
            ctx.check(ring_.at(i - 1).epoch < e.epoch,
                      "epochs_strictly_increasing", "entry ", i - 1,
                      " holds epoch ", ring_.at(i - 1).epoch,
                      ", entry ", i, " holds epoch ", e.epoch);
    }
}

void
Emab::corruptForTest()
{
    if (ring_.size() >= 2) {
        // Duplicate the newest epoch id into the oldest entry:
        // trips epochs_strictly_increasing.
        ring_.at(0).epoch = ring_.back().epoch;
        return;
    }
    if (ring_.empty())
        beginEpoch(1, 0x1000);
    // Overfill the current entry: trips addrs_within_entry_cap.
    EmabEntry &cur = ring_.back();
    while (cur.missAddrs.size() <= addrsPerEntry_)
        cur.missAddrs.push_back(0x2000);
}


void
Emab::ckpt(ckpt::Archiver &ar)
{
    ckpt::ckptCircularBuffer(ar, ring_, [](ckpt::Archiver &a,
                                           EmabEntry &e) {
        a.u64(e.epoch);
        a.u64(e.keyAddr);
        a.vecU64(e.missAddrs);
    });
}

} // namespace ebcp
