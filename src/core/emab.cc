#include "core/emab.hh"

#include "util/logging.hh"

namespace ebcp
{

Emab::Emab(unsigned entries, unsigned addrs_per_entry)
    : ring_(entries), addrsPerEntry_(addrs_per_entry)
{
    fatal_if(entries < 2, "EMAB needs at least two entries");
    fatal_if(addrs_per_entry == 0, "EMAB entries must hold addresses");
}

void
Emab::beginEpoch(EpochId epoch, Addr key_addr)
{
    // Reuse the evicted entry's slot in place: the address vector
    // keeps its capacity, so after the first lap around the ring an
    // epoch begin allocates nothing.
    EmabEntry &e = ring_.pushSlot();
    e.epoch = epoch;
    e.keyAddr = key_addr;
    e.missAddrs.clear();
    e.missAddrs.reserve(addrsPerEntry_);
}

void
Emab::recordMiss(Addr line_addr)
{
    if (ring_.empty())
        return; // no epoch open yet (run prologue)
    EmabEntry &cur = ring_.back();
    if (cur.missAddrs.size() < addrsPerEntry_)
        cur.missAddrs.push_back(line_addr);
}

} // namespace ebcp
