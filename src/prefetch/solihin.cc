#include "prefetch/solihin.hh"

#include <algorithm>

#include "ckpt/containers.hh"
#include "util/bitfield.hh"
#include "util/logging.hh"

namespace ebcp
{

Status
SolihinConfig::validate() const
{
    if (tableEntries == 0 || !isPowerOf2(tableEntries))
        return invalidArgError("solihin: table_entries ", tableEntries,
                               " must be a nonzero power of two");
    if (depth == 0 || width == 0)
        return invalidArgError("solihin: depth ", depth, " and width ",
                               width, " must both be nonzero");
    return Status();
}

SolihinPrefetcher::SolihinPrefetcher(const SolihinConfig &cfg,
                                     std::string name)
    : Prefetcher(std::move(name)), cfg_(cfg), recentMisses_(cfg.depth)
{
    fatal_if(!isPowerOf2(cfg.tableEntries),
             "Solihin table entries must be a power of two");
    fatal_if(cfg.depth == 0 || cfg.width == 0,
             "Solihin depth and width must be nonzero");
    stats().add(trains_);
    stats().add(matches_);
    stats().add(issued_);
}

std::uint64_t
SolihinPrefetcher::indexOf(Addr key) const
{
    return mix64(key) & (cfg_.tableEntries - 1);
}

void
SolihinPrefetcher::train(Addr new_miss)
{
    // The new miss is the level-k successor of the miss k places
    // before it (newest recent miss = level 1, etc.).
    for (std::size_t k = 0; k < recentMisses_.size(); ++k) {
        const Addr pred =
            recentMisses_.at(recentMisses_.size() - 1 - k);
        Entry &e = table_[indexOf(pred)];
        if (e.tag != pred) {
            e.tag = pred;
            // Reallocation keeps the level array and per-level
            // successor capacity; logically all levels become empty,
            // the same state assign() produced.
            e.levels.resize(cfg_.depth);
            for (Level &l : e.levels)
                l.succ.clear();
        }
        Level &lvl = e.levels[k];
        auto it = std::find(lvl.succ.begin(), lvl.succ.end(), new_miss);
        if (it != lvl.succ.end())
            lvl.succ.erase(it);
        lvl.succ.insert(lvl.succ.begin(), new_miss);
        if (lvl.succ.size() > cfg_.width)
            lvl.succ.pop_back();
        ++trains_;
    }
    recentMisses_.push(new_miss);

    // Updating the predecessors' entries is a read-modify-write of
    // table state in DRAM (the engine batches the per-level updates
    // of one miss, so charge one RMW per miss).
    if (engine_ && !recentMisses_.empty()) {
        MemAccessResult rd = engine_->tableRead(lastMissTick_);
        if (!rd.dropped)
            engine_->tableWrite(rd.complete);
    }
}

void
SolihinPrefetcher::predict(const L2AccessInfo &info)
{
    // The engine reads its table entry from DRAM before it can issue
    // anything; the read shares memory bandwidth with everything
    // else, at low priority.
    MemAccessResult rd = engine_->tableRead(info.when);
    if (rd.dropped)
        return;

    const Entry *e = table_.find(indexOf(info.lineAddr));
    if (!e || e->tag != info.lineAddr)
        return;
    ++matches_;

    for (const Level &lvl : e->levels) {
        for (Addr a : lvl.succ) {
            engine_->issuePrefetch(a, rd.complete);
            ++issued_;
        }
    }
}

void
SolihinPrefetcher::observeAccess(const L2AccessInfo &info)
{
    // Targets L2 misses of both instructions and loads, like EBCP --
    // but the engine lives at the memory side, so it observes only
    // requests that actually reach main memory. Prefetch-buffer hits
    // are invisible to it (the buffer is on chip, searched in
    // parallel with the L2), which is exactly why the paper places
    // the EBCP control on chip in front of the crossbar: a memory-
    // side engine's correlation chain stalls while its own
    // prefetching is succeeding.
    if (!info.offChip)
        return;

    lastMissTick_ = info.when;
    predict(info);
    train(info.lineAddr);
}


void
SolihinPrefetcher::ckpt(ckpt::Archiver &ar)
{
    Prefetcher::ckpt(ar);
    ckpt::ckptFlatMap(ar, table_, [](ckpt::Archiver &a, Entry &e) {
        a.u64(e.tag);
        a.vec(e.levels, [](ckpt::Archiver &la, Level &lv) {
            la.vecU64(lv.succ);
        });
    });
    ckpt::ckptCircularBuffer(ar, recentMisses_,
                             [](ckpt::Archiver &a, Addr &addr) {
        a.u64(addr);
    });
    ar.u64(lastMissTick_);
}

} // namespace ebcp
