/**
 * @file
 * Access-to-Miss Correlation (AMC) prefetcher, after the AMC
 * proposal for evolving graph analytics cited in PAPERS.md.
 *
 * Classic miss-correlating prefetchers (Solihin, EBCP) key their
 * tables on *misses*, so a key only trains when its line is off
 * chip; once prefetching succeeds, the key stops missing and the
 * correlation chain starves. AMC instead keys on every L2 *access*
 * (hit or miss): the table maps an access line to the off-chip
 * misses that followed it within a short window. The access stream
 * is stable even while the miss stream it predicts keeps evolving --
 * exactly the property graph workloads with mutating edge lists
 * need, and the same observation that leads the paper to place the
 * EBCP control in front of the crossbar where it sees every request.
 *
 * The table is direct-mapped and tag-checked like Solihin's, but
 * held on chip (sized like EBCP's on-chip variant); each entry keeps
 * the `width` most recent successor misses, and prediction chains
 * through successors-of-successors until `degree` lines are named.
 */

#ifndef EBCP_PREFETCH_AMC_HH
#define EBCP_PREFETCH_AMC_HH

#include <cstdint>
#include <vector>

#include "prefetch/prefetcher.hh"
#include "util/circular_buffer.hh"
#include "util/flat_map.hh"
#include "util/status.hh"

namespace ebcp
{

/** AMC configuration. */
struct AmcConfig
{
    std::uint64_t tableEntries = 1ULL << 16; //!< power of two
    unsigned width = 2;  //!< successor misses kept per key (MRU)
    unsigned window = 3; //!< recent accesses trained per miss
    unsigned degree = 6; //!< prefetches per trigger

    /** Coded rejection of nonsense values (factory gate). */
    Status validate() const;
};

/** The access-to-miss correlating prefetcher. */
class AmcPrefetcher : public Prefetcher
{
  public:
    explicit AmcPrefetcher(const AmcConfig &cfg, std::string name = "amc");

    void observeAccess(const L2AccessInfo &info) override;

    /** Re-derive table invariants (tags, widths, window bound). */
    void audit(AuditContext &ctx) const override;

    /** Serialize or restore all learned state (checkpointing). */
    void ckpt(ckpt::Archiver &ar) override;

  private:
    struct Entry
    {
        Addr tag = InvalidAddr;
        std::vector<Addr> succ; //!< MRU-first successor misses
    };

    std::uint64_t indexOf(Addr key) const;
    void train(Addr miss_line);
    void predict(Addr line, Tick when);

    AmcConfig cfg_;
    FlatMap<Entry> table_;
    CircularBuffer<Addr> recentAccesses_;

    Scalar trains_{"trains", "successor updates recorded"};
    Scalar matches_{"matches", "lookups that matched the tag"};
    Scalar issued_{"issued", "prefetches handed to the engine"};
};

} // namespace ebcp

#endif // EBCP_PREFETCH_AMC_HH
