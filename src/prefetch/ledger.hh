/**
 * @file
 * Per-prefetch lifecycle accounting.
 *
 * Aggregate "useful / issued" ratios hide the failure mode the paper
 * cares about most: a prefetch that arrives, but arrives late, or is
 * pushed out of the buffer before its demand access shows up. The
 * ledger classifies every issued prefetch into exactly one terminal
 * state:
 *
 *  - timely hit:    demand access found the data already on chip;
 *  - late hit:      demand access found the line still in flight and
 *                   had to wait out the residual latency;
 *  - evicted unused: replaced in the prefetch buffer before any use
 *                   (issued too early, or plain wrong);
 *  - resident unused: still sitting in the buffer at collection time
 *                   (counted by the caller from the buffer, not here).
 *
 * From these it derives the three standard prefetching metrics:
 * accuracy (used / issued), timeliness (timely / used), and -- with
 * the demand-miss count supplied by the caller -- coverage. The
 * ledger works for every prefetcher behind PrefetcherFactory because
 * it hangs off the L2 subsystem's issue/hit/evict paths, not off any
 * particular prediction algorithm.
 *
 * Every event additionally carries a source id so a composite
 * controller can score the engines it multiplexes: source 0 is the
 * unattributed default, sources 1..kMaxSources-1 are claimed by
 * whoever tags its issues (the id travels with the buffer entry, so
 * a hit or eviction is credited to the engine that issued it even if
 * the controller has switched engines since). Two bookkeeping rules
 * make the lifecycle states exact across the warm-up boundary:
 * beginMeasurement() records how many warm-up prefetches are still
 * buffer-resident (their later hits/evictions would otherwise appear
 * with no matching issue), and audit() checks the conservation
 * identity  carry_over + issued == used + evicted + resident.
 */

#ifndef EBCP_PREFETCH_LEDGER_HH
#define EBCP_PREFETCH_LEDGER_HH

#include <array>

#include "stats/group.hh"
#include "util/types.hh"

namespace ebcp
{

namespace ckpt
{
class Archiver;
}

class AuditContext;

/** Classifies every issued prefetch into a terminal lifecycle state. */
class PrefetchLedger
{
  public:
    /** Source-id space: 0 = unattributed, 1.. = composite children. */
    static constexpr unsigned kMaxSources = 16;

    /** Per-source slice of the lifecycle counters. */
    struct SourceCounters
    {
        std::uint64_t issued = 0;
        std::uint64_t timelyHits = 0;
        std::uint64_t lateHits = 0;
        std::uint64_t evictedUnused = 0;

        std::uint64_t used() const { return timelyHits + lateHits; }
    };

    PrefetchLedger();

    /** A prefetch read was accepted by the memory system. */
    void
    onIssue(unsigned source = 0)
    {
        ++issued_;
        ++slot(source).issued;
    }

    /**
     * A demand access consumed a prefetched line whose data was
     * already on chip. @p lead_ticks is the slack between the fill
     * and the use (larger = more headroom).
     */
    void
    onHitTimely(Tick lead_ticks, unsigned source = 0)
    {
        ++timelyHits_;
        ++slot(source).timelyHits;
        leadTicks_.sample(static_cast<double>(lead_ticks));
    }

    /**
     * A demand access consumed a prefetched line still in flight and
     * waited @p residual_ticks for it.
     */
    void
    onHitLate(Tick residual_ticks, unsigned source = 0)
    {
        ++lateHits_;
        ++slot(source).lateHits;
        residualTicks_.sample(static_cast<double>(residual_ticks));
    }

    /** A valid, never-used buffer entry was replaced. */
    void
    onEvictUnused(unsigned source = 0)
    {
        ++evictedUnused_;
        ++slot(source).evictedUnused;
    }

    std::uint64_t issued() const { return issued_.value(); }
    std::uint64_t timelyHits() const { return timelyHits_.value(); }
    std::uint64_t lateHits() const { return lateHits_.value(); }
    std::uint64_t evictedUnused() const { return evictedUnused_.value(); }

    /** Prefetches that served a demand access (timely or late). */
    std::uint64_t used() const
    {
        return timelyHits_.value() + lateHits_.value();
    }

    /** Per-source slice (out-of-range ids share slot 0). */
    const SourceCounters &
    source(unsigned source_id) const
    {
        return sources_[source_id < kMaxSources ? source_id : 0];
    }

    /** used / issued; 0 when nothing was issued. */
    double accuracy() const;

    /** timely / used; 0 when nothing was used. */
    double timeliness() const;

    /**
     * used / (used + @p demand_misses): the fraction of would-be
     * misses the prefetcher averted.
     */
    double coverage(std::uint64_t demand_misses) const;

    /**
     * Open the measurement window: zero the per-source slices (the
     * Scalars are reset by the owning stat tree at the same moment)
     * and record that @p resident_now warm-up prefetches are still
     * sitting in the buffer, so their eventual hits or evictions are
     * recognized as carried-over rather than breaking conservation.
     */
    void beginMeasurement(unsigned resident_now);

    /** Warm-up prefetches resident when the window opened. */
    std::uint64_t carryOver() const { return carryOver_; }

    /**
     * Re-derive the ledger's invariants: every prefetch alive during
     * the window is in exactly one state (carry_over + issued ==
     * timely + late + evicted + @p resident_now, with resident
     * supplied by the caller from the buffer), and the per-source
     * slices partition every aggregate counter.
     */
    void audit(AuditContext &ctx, unsigned resident_now) const;

    /** Serialize or restore counters, slices and carry-over. */
    void ckpt(ckpt::Archiver &ar);

    StatGroup &stats() { return stats_; }

  private:
    SourceCounters &
    slot(unsigned source_id)
    {
        return sources_[source_id < kMaxSources ? source_id : 0];
    }

    StatGroup stats_;
    Scalar issued_{"issued", "prefetches tracked by the ledger"};
    Scalar timelyHits_{"timely_hits",
                       "demand hits with prefetch data already on chip"};
    Scalar lateHits_{"late_hits",
                     "demand hits on still-in-flight prefetches"};
    Scalar evictedUnused_{"evicted_unused",
                          "prefetches replaced before any use"};
    Average leadTicks_{"lead_ticks",
                       "fill-to-use slack of timely hits"};
    Average residualTicks_{"residual_ticks",
                           "demand wait of late hits"};

    std::array<SourceCounters, kMaxSources> sources_{};
    std::uint64_t carryOver_ = 0;
};

} // namespace ebcp

#endif // EBCP_PREFETCH_LEDGER_HH
