/**
 * @file
 * Per-prefetch lifecycle accounting.
 *
 * Aggregate "useful / issued" ratios hide the failure mode the paper
 * cares about most: a prefetch that arrives, but arrives late, or is
 * pushed out of the buffer before its demand access shows up. The
 * ledger classifies every issued prefetch into exactly one terminal
 * state:
 *
 *  - timely hit:    demand access found the data already on chip;
 *  - late hit:      demand access found the line still in flight and
 *                   had to wait out the residual latency;
 *  - evicted unused: replaced in the prefetch buffer before any use
 *                   (issued too early, or plain wrong);
 *  - resident unused: still sitting in the buffer at collection time
 *                   (counted by the caller from the buffer, not here).
 *
 * From these it derives the three standard prefetching metrics:
 * accuracy (used / issued), timeliness (timely / used), and -- with
 * the demand-miss count supplied by the caller -- coverage. The
 * ledger works for every prefetcher behind PrefetcherFactory because
 * it hangs off the L2 subsystem's issue/hit/evict paths, not off any
 * particular prediction algorithm.
 */

#ifndef EBCP_PREFETCH_LEDGER_HH
#define EBCP_PREFETCH_LEDGER_HH

#include "stats/group.hh"
#include "util/types.hh"

namespace ebcp
{

/** Classifies every issued prefetch into a terminal lifecycle state. */
class PrefetchLedger
{
  public:
    PrefetchLedger();

    /** A prefetch read was accepted by the memory system. */
    void onIssue() { ++issued_; }

    /**
     * A demand access consumed a prefetched line whose data was
     * already on chip. @p lead_ticks is the slack between the fill
     * and the use (larger = more headroom).
     */
    void
    onHitTimely(Tick lead_ticks)
    {
        ++timelyHits_;
        leadTicks_.sample(static_cast<double>(lead_ticks));
    }

    /**
     * A demand access consumed a prefetched line still in flight and
     * waited @p residual_ticks for it.
     */
    void
    onHitLate(Tick residual_ticks)
    {
        ++lateHits_;
        residualTicks_.sample(static_cast<double>(residual_ticks));
    }

    /** A valid, never-used buffer entry was replaced. */
    void onEvictUnused() { ++evictedUnused_; }

    std::uint64_t issued() const { return issued_.value(); }
    std::uint64_t timelyHits() const { return timelyHits_.value(); }
    std::uint64_t lateHits() const { return lateHits_.value(); }
    std::uint64_t evictedUnused() const { return evictedUnused_.value(); }

    /** Prefetches that served a demand access (timely or late). */
    std::uint64_t used() const
    {
        return timelyHits_.value() + lateHits_.value();
    }

    /** used / issued; 0 when nothing was issued. */
    double accuracy() const;

    /** timely / used; 0 when nothing was used. */
    double timeliness() const;

    /**
     * used / (used + @p demand_misses): the fraction of would-be
     * misses the prefetcher averted.
     */
    double coverage(std::uint64_t demand_misses) const;

    StatGroup &stats() { return stats_; }

  private:
    StatGroup stats_;
    Scalar issued_{"issued", "prefetches tracked by the ledger"};
    Scalar timelyHits_{"timely_hits",
                       "demand hits with prefetch data already on chip"};
    Scalar lateHits_{"late_hits",
                     "demand hits on still-in-flight prefetches"};
    Scalar evictedUnused_{"evicted_unused",
                          "prefetches replaced before any use"};
    Average leadTicks_{"lead_ticks",
                       "fill-to-use slack of timely hits"};
    Average residualTicks_{"residual_ticks",
                           "demand wait of late hits"};
};

} // namespace ebcp

#endif // EBCP_PREFETCH_LEDGER_HH
