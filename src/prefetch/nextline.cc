#include "prefetch/nextline.hh"

#include "util/bitfield.hh"

namespace ebcp
{

Status
NextLineConfig::validate() const
{
    if (depth == 0)
        return invalidArgError(
            "nextline: depth=0 would never prefetch; use the null "
            "prefetcher to disable prefetching");
    if (lineBytes == 0 || !isPowerOf2(lineBytes))
        return invalidArgError("nextline: line_bytes ", lineBytes,
                               " must be a nonzero power of two");
    if (!onInst && !onLoad)
        return invalidArgError("nextline: prefetching disabled on "
                               "both instruction and load misses; "
                               "use the null prefetcher instead");
    return Status();
}

NextLinePrefetcher::NextLinePrefetcher(const NextLineConfig &cfg)
    : Prefetcher("nextline"), cfg_(cfg)
{
    stats().add(issued_);
}

void
NextLinePrefetcher::observeAccess(const L2AccessInfo &info)
{
    // Trigger on real misses (and their averted equivalents) only;
    // L2 hits need no help.
    if (!info.offChip && !info.prefBufHit)
        return;
    if (info.isInst ? !cfg_.onInst : !cfg_.onLoad)
        return;

    for (unsigned k = 1; k <= cfg_.depth; ++k) {
        engine_->issuePrefetch(
            info.lineAddr + static_cast<Addr>(k) * cfg_.lineBytes,
            info.when);
        ++issued_;
    }
}

} // namespace ebcp
