#include "prefetch/nextline.hh"

namespace ebcp
{

NextLinePrefetcher::NextLinePrefetcher(const NextLineConfig &cfg)
    : Prefetcher("nextline"), cfg_(cfg)
{
    stats().add(issued_);
}

void
NextLinePrefetcher::observeAccess(const L2AccessInfo &info)
{
    // Trigger on real misses (and their averted equivalents) only;
    // L2 hits need no help.
    if (!info.offChip && !info.prefBufHit)
        return;
    if (info.isInst ? !cfg_.onInst : !cfg_.onLoad)
        return;

    for (unsigned k = 1; k <= cfg_.depth; ++k) {
        engine_->issuePrefetch(
            info.lineAddr + static_cast<Addr>(k) * cfg_.lineBytes,
            info.when);
        ++issued_;
    }
}

} // namespace ebcp
