/**
 * @file
 * The composite prefetcher: a runtime-adaptive controller that
 * multiplexes several child engines and lets the PrefetchLedger
 * referee them.
 *
 * Every child observes the full access stream and keeps training,
 * but only the *active* child's prefetches reach the hierarchy; each
 * issue is tagged with the child's ledger source id, so hits and
 * evictions are credited to the engine that issued them even after
 * the controller has moved on. Every `calib_interval` L2 accesses
 * the controller calibrates (Triangel-style accuracy/timeliness
 * feedback):
 *
 *  - the just-active child's per-source accuracy over the interval
 *    throttles its prefetch degree between the configured bounds
 *    (high accuracy earns a deeper degree, low accuracy loses one);
 *  - in the exploration phase each child is given one interval in
 *    turn, its used-prefetch count over that interval becoming its
 *    score;
 *  - exploitation then runs the best scorer until either
 *    `explore_period` intervals pass or its per-interval usefulness
 *    collapses below half its winning score (a phase change), which
 *    re-opens exploration.
 *
 * All decisions are integer comparisons over ledger deltas, so the
 * controller is bit-deterministic across parallel sweeps and
 * checkpoint save/restore (every counter below is serialized).
 */

#ifndef EBCP_PREFETCH_COMPOSITE_HH
#define EBCP_PREFETCH_COMPOSITE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "prefetch/ledger.hh"
#include "prefetch/prefetcher.hh"
#include "util/status.hh"

namespace ebcp
{

/** Composite controller configuration. */
struct CompositeConfig
{
    /** Child engines, by factory name (built by the factory). */
    std::vector<std::string> engines{"stream", "dcpt", "amc", "ebcp"};
    std::uint64_t calibInterval = 8192; //!< L2 accesses per interval
    unsigned explorePeriod = 24; //!< exploit intervals before re-explore
    unsigned minDegree = 1;     //!< throttle floor (per child)
    unsigned maxDegree = 8;     //!< throttle ceiling (per child)
    double loAccuracy = 0.40;   //!< below: degree shrinks
    double hiAccuracy = 0.75;   //!< at or above: degree grows
    unsigned initialDegree = 4; //!< starting degree (per child)

    /** Coded rejection of nonsense values (factory gate). */
    Status validate() const;
};

/** Adaptive multiplexer over factory-built child prefetchers. */
class CompositePrefetcher : public Prefetcher
{
  public:
    /**
     * @param children factory-built engines, one per
     *        @p cfg.engines entry, in the same order.
     */
    CompositePrefetcher(const CompositeConfig &cfg,
                        std::vector<std::unique_ptr<Prefetcher>> children);

    void observeAccess(const L2AccessInfo &info) override;
    void observePrefetchHit(Addr line_addr, std::uint64_t corr_index,
                            Tick when) override;
    void attachLedger(const PrefetchLedger &ledger) override;
    void beginMeasurement() override;
    void attachTraceLog(TraceLog &log) override;

    /** Children's invariants plus the controller's own. */
    void audit(AuditContext &ctx) const override;

    /** Serialize or restore children and controller state. */
    void ckpt(ckpt::Archiver &ar) override;

    unsigned activeChild() const { return activeChild_; }
    unsigned childDegree(unsigned i) const { return degree_.at(i); }
    std::size_t childCount() const { return children_.size(); }
    const Prefetcher &child(unsigned i) const { return *children_.at(i); }

    /** Ledger source id child @p i issues under (0 is unattributed). */
    static unsigned sourceIdOf(unsigned i) { return i + 1; }

  private:
    /** Correlation indices are multiplexed by child: the top byte
     * routes a buffer hit back to the child whose table index the
     * low bits carry. */
    static constexpr unsigned kCorrTagShift = 56;
    static constexpr std::uint64_t kCorrMask =
        (std::uint64_t{1} << kCorrTagShift) - 1;

    /** Engine facade handed to child @p idx: tags, gates and
     * throttles the child's issues before forwarding them. */
    class ChildPort : public PrefetchEngine
    {
      public:
        ChildPort(CompositePrefetcher *owner, unsigned idx)
            : owner_(owner), idx_(idx)
        {}

        void issuePrefetch(Addr line_addr, Tick when,
                           std::uint64_t corr_index, bool has_corr,
                           unsigned source) override;
        MemAccessResult tableRead(Tick when) override;
        MemAccessResult tableWrite(Tick when) override;
        Tick memoryLatency() const override;

      private:
        CompositePrefetcher *owner_;
        unsigned idx_;
    };

    /** Ledger slice snapshot for interval deltas. */
    struct Snapshot
    {
        std::uint64_t issued = 0;
        std::uint64_t used = 0;
        std::uint64_t timely = 0;
    };

    void childIssue(unsigned idx, Addr line_addr, Tick when,
                    std::uint64_t corr_index, bool has_corr);
    void calibrate();
    void switchTo(unsigned idx);
    Snapshot sampleSource(unsigned idx) const;

    CompositeConfig cfg_;
    std::vector<std::unique_ptr<Prefetcher>> children_;
    std::vector<std::unique_ptr<ChildPort>> ports_;
    const PrefetchLedger *ledger_ = nullptr;

    // Controller state -- all serialized.
    std::uint64_t accessCount_ = 0;
    std::uint32_t activeChild_ = 0;
    bool exploring_ = true;
    std::uint32_t exploreStep_ = 0;
    std::uint32_t exploitSteps_ = 0;
    std::uint64_t baselineScore_ = 0; //!< winner's score at selection
    std::uint32_t issuedThisTrigger_ = 0;
    std::vector<std::uint32_t> degree_;   //!< per-child throttle
    std::vector<std::uint64_t> score_;    //!< per-child explore score
    std::vector<Snapshot> snap_;          //!< per-child last sample

    Scalar calibrations_{"calibrations", "calibration intervals closed"};
    Scalar engineSwitches_{"engine_switches", "active-child changes"};
    Scalar reExplorations_{"re_explorations",
                           "exploration rounds re-opened"};
    Scalar suppressedIssues_{"suppressed_issues",
                             "issues gated off from inactive children"};
    Scalar throttledIssues_{"throttled_issues",
                            "issues over the per-trigger degree"};
    Scalar degreeRaises_{"degree_raises", "degree increments earned"};
    Scalar degreeDrops_{"degree_drops", "degree decrements imposed"};
};

} // namespace ebcp

#endif // EBCP_PREFETCH_COMPOSITE_HH
