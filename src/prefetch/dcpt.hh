/**
 * @file
 * Delta-Correlating Prediction Tables (DCPT), after Grannaes, Jahre
 * and Natvig -- a per-PC temporal prefetcher added as a comparison
 * point alongside the paper's engines.
 *
 * Each load PC owns one table entry holding the last miss address,
 * the last line it prefetched, and a small circular buffer of the
 * line-granular deltas between its consecutive misses. On a new
 * miss the entry's freshest delta pair is searched for in the older
 * history; a match replays the deltas that followed it, naming the
 * lines this PC will miss on next. The in-flight filter (everything
 * up to and including lastPrefetch is discarded) keeps re-walks of
 * the same pattern from re-issuing the prefix already requested.
 *
 * Where the paper's EBCP correlates epoch onsets across the whole
 * miss stream, DCPT correlates delta history within one instruction,
 * so it shines on strided or repeating per-PC reference patterns and
 * has no memory-resident state at all (the table is small enough to
 * sit beside the L2).
 */

#ifndef EBCP_PREFETCH_DCPT_HH
#define EBCP_PREFETCH_DCPT_HH

#include <cstdint>
#include <vector>

#include "prefetch/prefetcher.hh"
#include "util/status.hh"

namespace ebcp
{

/** DCPT configuration. */
struct DcptConfig
{
    unsigned tableEntries = 128;  //!< per-PC entries (LRU)
    unsigned deltasPerEntry = 16; //!< circular delta history per PC
    unsigned degree = 6;          //!< prefetches per trigger
    unsigned lineBytes = 64;

    /** Coded rejection of nonsense values (factory gate). */
    Status validate() const;
};

/** The delta-correlating prediction-table prefetcher. */
class DcptPrefetcher : public Prefetcher
{
  public:
    explicit DcptPrefetcher(const DcptConfig &cfg,
                            std::string name = "dcpt");

    void observeAccess(const L2AccessInfo &info) override;

    /** Re-derive table invariants (ring indices, LRU stamps, keys). */
    void audit(AuditContext &ctx) const override;

    /** Serialize or restore all learned state (checkpointing). */
    void ckpt(ckpt::Archiver &ar) override;

  private:
    struct Entry
    {
        Addr pc = 0;
        Addr lastAddr = 0;     //!< last miss line of this PC
        Addr lastPrefetch = 0; //!< last line handed to the engine
        std::vector<std::int64_t> deltas; //!< ring, line-granular
        unsigned head = 0;  //!< ring slot of the oldest delta
        unsigned count = 0; //!< deltas currently held
        bool valid = false;
        std::uint64_t stamp = 0;
    };

    Entry *lookupOrAllocate(Addr pc);
    void pushDelta(Entry &e, std::int64_t delta);
    std::int64_t deltaAt(const Entry &e, unsigned i) const;
    void predict(Entry &e, Addr line, Tick when);

    DcptConfig cfg_;
    std::vector<Entry> table_;
    std::uint64_t stampCounter_ = 0;

    Scalar trains_{"trains", "deltas recorded"};
    Scalar matches_{"matches", "delta pairs found in the history"};
    Scalar issued_{"issued", "prefetches handed to the engine"};
    Scalar filtered_{"filtered",
                     "candidates dropped by the in-flight filter"};
};

} // namespace ebcp

#endif // EBCP_PREFETCH_DCPT_HH
