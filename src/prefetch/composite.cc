#include "prefetch/composite.hh"

#include "ckpt/archiver.hh"
#include "util/logging.hh"
#include "verify/audit.hh"

namespace ebcp
{

Status
CompositeConfig::validate() const
{
    if (engines.empty())
        return invalidArgError("composite: needs at least one child "
                               "engine");
    if (engines.size() >= PrefetchLedger::kMaxSources)
        return invalidArgError("composite: ", engines.size(),
                               " child engines but the ledger "
                               "attributes at most ",
                               PrefetchLedger::kMaxSources - 1);
    for (const std::string &e : engines)
        if (e == "composite")
            return invalidArgError(
                "composite: cannot nest a composite inside itself");
    if (calibInterval == 0)
        return invalidArgError("composite: calib_interval must be "
                               "nonzero");
    if (explorePeriod == 0)
        return invalidArgError("composite: explore_period must be "
                               "nonzero");
    if (minDegree == 0 || minDegree > maxDegree)
        return invalidArgError("composite: degree bounds [", minDegree,
                               ", ", maxDegree, "] are not a nonempty "
                               "range from 1");
    if (initialDegree < minDegree || initialDegree > maxDegree)
        return invalidArgError("composite: initial degree ",
                               initialDegree, " outside [", minDegree,
                               ", ", maxDegree, "]");
    if (!(loAccuracy >= 0.0) || !(hiAccuracy <= 1.0) ||
        !(loAccuracy < hiAccuracy))
        return invalidArgError("composite: accuracy thresholds ",
                               loAccuracy, "/", hiAccuracy,
                               " must satisfy 0 <= lo < hi <= 1");
    return Status();
}

CompositePrefetcher::CompositePrefetcher(
    const CompositeConfig &cfg,
    std::vector<std::unique_ptr<Prefetcher>> children)
    : Prefetcher("composite"), cfg_(cfg), children_(std::move(children))
{
    fatal_if(!cfg.validate().ok(), cfg.validate().toString());
    fatal_if(children_.size() != cfg.engines.size(),
             "composite: ", children_.size(), " children built for ",
             cfg.engines.size(), " configured engines");
    stats().add(calibrations_);
    stats().add(engineSwitches_);
    stats().add(reExplorations_);
    stats().add(suppressedIssues_);
    stats().add(throttledIssues_);
    stats().add(degreeRaises_);
    stats().add(degreeDrops_);
    const unsigned n = static_cast<unsigned>(children_.size());
    degree_.assign(n, cfg_.initialDegree);
    score_.assign(n, 0);
    snap_.assign(n, {});
    ports_.reserve(n);
    for (unsigned i = 0; i < n; ++i) {
        ports_.push_back(std::make_unique<ChildPort>(this, i));
        children_[i]->setEngine(ports_[i].get());
        stats().addChild(children_[i]->stats());
    }
}

void
CompositePrefetcher::ChildPort::issuePrefetch(Addr line_addr, Tick when,
                                              std::uint64_t corr_index,
                                              bool has_corr,
                                              unsigned source)
{
    (void)source; // children never sub-attribute
    owner_->childIssue(idx_, line_addr, when, corr_index, has_corr);
}

MemAccessResult
CompositePrefetcher::ChildPort::tableRead(Tick when)
{
    // Table traffic is forwarded even for inactive children: their
    // predictors keep training, and training traffic is part of the
    // cost the controller's choice has to carry.
    return owner_->engine_->tableRead(when);
}

MemAccessResult
CompositePrefetcher::ChildPort::tableWrite(Tick when)
{
    return owner_->engine_->tableWrite(when);
}

Tick
CompositePrefetcher::ChildPort::memoryLatency() const
{
    return owner_->engine_->memoryLatency();
}

void
CompositePrefetcher::childIssue(unsigned idx, Addr line_addr, Tick when,
                                std::uint64_t corr_index, bool has_corr)
{
    if (!engine_)
        return;
    if (idx != activeChild_) {
        ++suppressedIssues_;
        return;
    }
    if (issuedThisTrigger_ >= degree_[idx]) {
        ++throttledIssues_;
        return;
    }
    ++issuedThisTrigger_;
    std::uint64_t corr = corr_index;
    if (has_corr)
        corr = (static_cast<std::uint64_t>(sourceIdOf(idx))
                << kCorrTagShift) |
               (corr_index & kCorrMask);
    engine_->issuePrefetch(line_addr, when, corr, has_corr,
                           sourceIdOf(idx));
}

CompositePrefetcher::Snapshot
CompositePrefetcher::sampleSource(unsigned idx) const
{
    Snapshot s;
    if (!ledger_)
        return s;
    const PrefetchLedger::SourceCounters &c =
        ledger_->source(sourceIdOf(idx));
    s.issued = c.issued;
    s.used = c.used();
    s.timely = c.timelyHits;
    return s;
}

void
CompositePrefetcher::switchTo(unsigned idx)
{
    if (idx != activeChild_) {
        activeChild_ = idx;
        ++engineSwitches_;
    }
}

void
CompositePrefetcher::calibrate()
{
    ++calibrations_;
    const unsigned n = static_cast<unsigned>(children_.size());
    const unsigned a = activeChild_;

    // Throttle the child that just ran on its interval accuracy.
    const Snapshot cur = sampleSource(a);
    const std::uint64_t d_issued = cur.issued - snap_[a].issued;
    const std::uint64_t d_used = cur.used - snap_[a].used;
    if (d_issued > 0) {
        // acc >= hi  <=>  used >= hi * issued, in exact integer
        // arithmetic scaled by 100 (thresholds are percent-granular).
        const std::uint64_t hi =
            static_cast<std::uint64_t>(cfg_.hiAccuracy * 100.0);
        const std::uint64_t lo =
            static_cast<std::uint64_t>(cfg_.loAccuracy * 100.0);
        if (d_used * 100 >= hi * d_issued &&
            degree_[a] < cfg_.maxDegree) {
            ++degree_[a];
            ++degreeRaises_;
        } else if (d_used * 100 < lo * d_issued &&
                   degree_[a] > cfg_.minDegree) {
            --degree_[a];
            ++degreeDrops_;
        }
    }
    score_[a] = d_used;

    if (exploring_) {
        if (++exploreStep_ >= n) {
            // Every child has had its audition interval; exploit the
            // best used-count (ties: more timely hits would need a
            // second pass, so break by lower index -- deterministic
            // and stable).
            unsigned best = 0;
            for (unsigned i = 1; i < n; ++i)
                if (score_[i] > score_[best])
                    best = i;
            exploring_ = false;
            exploitSteps_ = 0;
            baselineScore_ = score_[best];
            switchTo(best);
        } else {
            switchTo(exploreStep_);
        }
    } else {
        ++exploitSteps_;
        const bool stale = exploitSteps_ >= cfg_.explorePeriod;
        // Usefulness collapsed to under half the score that won the
        // audition: the phase changed under us.
        const bool collapsed =
            baselineScore_ > 0 && d_used * 2 < baselineScore_;
        if (stale || collapsed) {
            exploring_ = true;
            exploreStep_ = 0;
            ++reExplorations_;
            switchTo(0);
        }
    }

    for (unsigned i = 0; i < n; ++i)
        snap_[i] = sampleSource(i);
}

void
CompositePrefetcher::observeAccess(const L2AccessInfo &info)
{
    issuedThisTrigger_ = 0;
    for (auto &c : children_)
        c->observeAccess(info);
    if (++accessCount_ % cfg_.calibInterval == 0)
        calibrate();
}

void
CompositePrefetcher::observePrefetchHit(Addr line_addr,
                                        std::uint64_t corr_index,
                                        Tick when)
{
    const unsigned idx =
        static_cast<unsigned>(corr_index >> kCorrTagShift);
    if (idx >= 1 && idx <= children_.size())
        children_[idx - 1]->observePrefetchHit(
            line_addr, corr_index & kCorrMask, when);
}

void
CompositePrefetcher::attachLedger(const PrefetchLedger &ledger)
{
    ledger_ = &ledger;
}

void
CompositePrefetcher::beginMeasurement()
{
    // The ledger was just zeroed; stale warm-up samples would make
    // the next interval's deltas wrap (and trip the audit). Degrees,
    // scores and the active child carry over -- only the sampling
    // baseline resets.
    for (unsigned i = 0; i < children_.size(); ++i)
        snap_[i] = sampleSource(i);
    for (auto &c : children_)
        c->beginMeasurement();
}

void
CompositePrefetcher::attachTraceLog(TraceLog &log)
{
    for (auto &c : children_)
        c->attachTraceLog(log);
}

void
CompositePrefetcher::audit(AuditContext &ctx) const
{
    const unsigned n = static_cast<unsigned>(children_.size());
    ctx.check(activeChild_ < n, "active_child_in_range",
              "active child ", activeChild_, " of ", n);
    ctx.check(exploreStep_ <= n, "explore_step_in_range",
              "exploration step ", exploreStep_, " of ", n,
              " children");
    for (unsigned i = 0; i < n; ++i)
        ctx.check(degree_[i] >= cfg_.minDegree &&
                      degree_[i] <= cfg_.maxDegree,
                  "degree_within_bounds", "child ", i, " degree ",
                  degree_[i], " outside [", cfg_.minDegree, ", ",
                  cfg_.maxDegree, "]");
    ctx.check(issuedThisTrigger_ <= cfg_.maxDegree,
              "trigger_issue_bounded", issuedThisTrigger_,
              " issues in one trigger, degree ceiling ",
              cfg_.maxDegree);
    if (ledger_) {
        // Snapshots are monotone samples of the ledger: a snapshot
        // ahead of the live counter means state was restored against
        // the wrong ledger or a sample was fabricated.
        for (unsigned i = 0; i < n; ++i) {
            const Snapshot live = sampleSource(i);
            ctx.check(snap_[i].issued <= live.issued &&
                          snap_[i].used <= live.used,
                      "snapshot_not_ahead_of_ledger", "child ", i,
                      " snapshot (", snap_[i].issued, " issued, ",
                      snap_[i].used, " used) ahead of the ledger (",
                      live.issued, ", ", live.used, ")");
        }
    }
    for (const auto &c : children_)
        c->audit(ctx);
}

void
CompositePrefetcher::ckpt(ckpt::Archiver &ar)
{
    Prefetcher::ckpt(ar);
    std::uint32_t n = static_cast<std::uint32_t>(children_.size());
    ar.u32(n);
    if (!ar.saving() && ar.ok() && n != children_.size()) {
        ar.fail(invalidArgError("composite checkpoint recorded ", n,
                                " children but this configuration "
                                "has ", children_.size()));
        return;
    }
    for (auto &c : children_) {
        c->ckpt(ar);
        if (!ar.ok())
            return;
    }
    ar.u64(accessCount_);
    ar.u32(activeChild_);
    ar.boolean(exploring_);
    ar.u32(exploreStep_);
    ar.u32(exploitSteps_);
    ar.u64(baselineScore_);
    ar.u32(issuedThisTrigger_);
    ar.fixedVec(degree_, [](ckpt::Archiver &a, std::uint32_t &d) {
        a.u32(d);
    }, "composite degrees");
    ar.fixedVecU64(score_, "composite scores");
    ar.fixedVec(snap_, [](ckpt::Archiver &a, Snapshot &s) {
        a.u64(s.issued);
        a.u64(s.used);
        a.u64(s.timely);
    }, "composite snapshots");
    if (!ar.saving() && ar.ok() && activeChild_ >= children_.size())
        ar.fail(corruptionError("composite checkpoint names active "
                                "child ", activeChild_, " of ",
                                children_.size()));
}

} // namespace ebcp
