/**
 * @file
 * Next-line prefetcher, after Smith [6] -- the paper's Section 2.2
 * example of *restricted* correlation prefetching (each correlation
 * is compactly encoded as the fixed +1-line stride).
 *
 * On an L1 miss, prefetches the next `depth` sequential lines.
 * Configurable to cover instruction fetches (the classic use), loads,
 * or both. Included as the simplest possible baseline: it needs no
 * storage at all, and its gap to the correlation prefetchers measures
 * what *remembering* miss patterns buys.
 */

#ifndef EBCP_PREFETCH_NEXTLINE_HH
#define EBCP_PREFETCH_NEXTLINE_HH

#include "prefetch/prefetcher.hh"
#include "util/status.hh"

namespace ebcp
{

/** Next-line prefetcher configuration. */
struct NextLineConfig
{
    unsigned depth = 2;      //!< sequential lines to prefetch
    unsigned lineBytes = 64;
    bool onInst = true;      //!< prefetch after instruction misses
    bool onLoad = false;     //!< prefetch after load misses

    /** Coded rejection of nonsense values (factory gate). */
    Status validate() const;
};

/** The next-line prefetcher. */
class NextLinePrefetcher : public Prefetcher
{
  public:
    explicit NextLinePrefetcher(const NextLineConfig &cfg = {});

    void observeAccess(const L2AccessInfo &info) override;

  private:
    NextLineConfig cfg_;

    Scalar issued_{"issued", "prefetches handed to the engine"};
};

} // namespace ebcp

#endif // EBCP_PREFETCH_NEXTLINE_HH
