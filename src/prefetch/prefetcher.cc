#include "prefetch/prefetcher.hh"

#include "ckpt/archiver.hh"

namespace ebcp
{

void
Prefetcher::ckpt(ckpt::Archiver &ar)
{
    stats_.ckpt(ar);
}

} // namespace ebcp
