#include "prefetch/stream_prefetcher.hh"

#include <cstdlib>

#include "ckpt/archiver.hh"

namespace ebcp
{

Status
StreamPrefetcherConfig::validate() const
{
    if (streams == 0)
        return invalidArgError("stream: streams must be nonzero");
    if (distance == 0)
        return invalidArgError(
            "stream: distance=0 would never prefetch; use the null "
            "prefetcher to disable prefetching");
    if (trainConfirms == 0)
        return invalidArgError("stream: train_confirms must be "
                               "nonzero");
    if (maxStrideBytes == 0)
        return invalidArgError("stream: max_stride_bytes must be "
                               "nonzero");
    return Status();
}

StreamPrefetcher::StreamPrefetcher(const StreamPrefetcherConfig &cfg)
    : Prefetcher("stream"), cfg_(cfg), streams_(cfg.streams)
{
    stats().add(allocations_);
    stats().add(confirmations_);
    stats().add(issued_);
}

StreamPrefetcher::Stream *
StreamPrefetcher::findMatch(Addr line_addr)
{
    // A stream matches if the new address continues it (within one
    // stride of the expected next address) or re-touches its last
    // line.
    for (Stream &s : streams_) {
        if (!s.valid)
            continue;
        const std::int64_t delta =
            static_cast<std::int64_t>(line_addr) -
            static_cast<std::int64_t>(s.lastAddr);
        if (delta == 0)
            return &s;
        if (std::llabs(delta) <=
            static_cast<std::int64_t>(cfg_.maxStrideBytes)) {
            if (!s.streaming || delta == s.stride ||
                (s.stride != 0 && delta % s.stride == 0))
                return &s;
        }
    }
    return nullptr;
}

StreamPrefetcher::Stream &
StreamPrefetcher::allocate(Addr line_addr)
{
    Stream *victim = &streams_[0];
    for (Stream &s : streams_) {
        if (!s.valid) {
            victim = &s;
            break;
        }
        if (s.lastUse < victim->lastUse)
            victim = &s;
    }
    ++allocations_;
    *victim = Stream{};
    victim->valid = true;
    victim->lastAddr = line_addr;
    victim->lastUse = ++useCounter_;
    return *victim;
}

void
StreamPrefetcher::observeAccess(const L2AccessInfo &info)
{
    // Trains on the L1 data-miss stream; targets load misses only.
    if (info.isInst)
        return;

    const Addr addr = info.lineAddr;
    Stream *s = findMatch(addr);
    if (!s) {
        allocate(addr);
        return;
    }

    s->lastUse = ++useCounter_;
    const std::int64_t delta = static_cast<std::int64_t>(addr) -
                               static_cast<std::int64_t>(s->lastAddr);
    if (delta == 0)
        return;

    if (delta == s->stride) {
        if (!s->streaming) {
            if (++s->confirms >= cfg_.trainConfirms) {
                // Stream confirmed: burst `distance` prefetches ahead.
                s->streaming = true;
                ++confirmations_;
                for (unsigned k = 1; k <= cfg_.distance; ++k) {
                    engine_->issuePrefetch(
                        addr + static_cast<Addr>(k * s->stride),
                        info.when);
                    ++issued_;
                }
            }
        } else {
            // Steady state: stay `distance` strides ahead.
            engine_->issuePrefetch(
                addr + static_cast<Addr>(cfg_.distance * s->stride),
                info.when);
            ++issued_;
        }
    } else {
        // New candidate stride; re-train.
        s->stride = delta;
        s->confirms = 1;
        s->streaming = false;
    }
    s->lastAddr = addr;
}


void
StreamPrefetcher::ckpt(ckpt::Archiver &ar)
{
    Prefetcher::ckpt(ar);
    ar.fixedVec(streams_, [](ckpt::Archiver &a, Stream &st) {
        a.boolean(st.valid);
        a.u64(st.lastAddr);
        a.i64(st.stride);
        a.uns(st.confirms);
        a.boolean(st.streaming);
        a.u64(st.lastUse);
    }, "stream trackers");
    ar.u64(useCounter_);
}

} // namespace ebcp
