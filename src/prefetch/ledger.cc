#include "prefetch/ledger.hh"

#include "ckpt/archiver.hh"
#include "verify/audit.hh"

namespace ebcp
{

PrefetchLedger::PrefetchLedger() : stats_("prefetch_ledger")
{
    stats_.add(issued_);
    stats_.add(timelyHits_);
    stats_.add(lateHits_);
    stats_.add(evictedUnused_);
    stats_.add(leadTicks_);
    stats_.add(residualTicks_);
}

double
PrefetchLedger::accuracy() const
{
    const std::uint64_t n = issued();
    return n ? static_cast<double>(used()) / static_cast<double>(n) : 0.0;
}

double
PrefetchLedger::timeliness() const
{
    const std::uint64_t n = used();
    return n ? static_cast<double>(timelyHits()) / static_cast<double>(n)
             : 0.0;
}

double
PrefetchLedger::coverage(std::uint64_t demand_misses) const
{
    const std::uint64_t base = used() + demand_misses;
    return base ? static_cast<double>(used()) / static_cast<double>(base)
                : 0.0;
}

void
PrefetchLedger::beginMeasurement(unsigned resident_now)
{
    sources_ = {};
    carryOver_ = resident_now;
}

void
PrefetchLedger::audit(AuditContext &ctx, unsigned resident_now) const
{
    // Exactly-once lifecycle: every prefetch ever resident during the
    // window (carried over from warm-up, or issued since) is counted
    // in exactly one of {timely hit, late hit, evicted unused, still
    // resident}. A deficit means an event was dropped; an excess
    // means a terminal state was counted twice (the late-hit/evict
    // double-count this check exists to catch).
    ctx.check(carryOver_ + issued() ==
                  used() + evictedUnused() + resident_now,
              "lifecycle_conservation",
              carryOver_, " carried over + ", issued(), " issued != ",
              timelyHits(), " timely + ", lateHits(), " late + ",
              evictedUnused(), " evicted + ", resident_now,
              " resident");

    SourceCounters sum;
    for (const SourceCounters &s : sources_) {
        sum.issued += s.issued;
        sum.timelyHits += s.timelyHits;
        sum.lateHits += s.lateHits;
        sum.evictedUnused += s.evictedUnused;
    }
    ctx.check(sum.issued == issued() && sum.timelyHits == timelyHits() &&
                  sum.lateHits == lateHits() &&
                  sum.evictedUnused == evictedUnused(),
              "sources_partition_aggregates",
              "per-source slices (", sum.issued, "/", sum.timelyHits,
              "/", sum.lateHits, "/", sum.evictedUnused,
              ") do not sum to the aggregates (", issued(), "/",
              timelyHits(), "/", lateHits(), "/", evictedUnused(), ")");
}

void
PrefetchLedger::ckpt(ckpt::Archiver &ar)
{
    stats_.ckpt(ar);
    for (SourceCounters &s : sources_) {
        ar.u64(s.issued);
        ar.u64(s.timelyHits);
        ar.u64(s.lateHits);
        ar.u64(s.evictedUnused);
    }
    ar.u64(carryOver_);
}

} // namespace ebcp
