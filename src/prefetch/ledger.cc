#include "prefetch/ledger.hh"

namespace ebcp
{

PrefetchLedger::PrefetchLedger() : stats_("prefetch_ledger")
{
    stats_.add(issued_);
    stats_.add(timelyHits_);
    stats_.add(lateHits_);
    stats_.add(evictedUnused_);
    stats_.add(leadTicks_);
    stats_.add(residualTicks_);
}

double
PrefetchLedger::accuracy() const
{
    const std::uint64_t n = issued();
    return n ? static_cast<double>(used()) / static_cast<double>(n) : 0.0;
}

double
PrefetchLedger::timeliness() const
{
    const std::uint64_t n = used();
    return n ? static_cast<double>(timelyHits()) / static_cast<double>(n)
             : 0.0;
}

double
PrefetchLedger::coverage(std::uint64_t demand_misses) const
{
    const std::uint64_t base = used() + demand_misses;
    return base ? static_cast<double>(used()) / static_cast<double>(base)
                : 0.0;
}

} // namespace ebcp
