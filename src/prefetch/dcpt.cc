#include "prefetch/dcpt.hh"

#include "ckpt/archiver.hh"
#include "util/bitfield.hh"
#include "util/logging.hh"
#include "verify/audit.hh"

namespace ebcp
{

Status
DcptConfig::validate() const
{
    if (tableEntries == 0)
        return invalidArgError("dcpt: table_entries must be nonzero");
    if (deltasPerEntry < 3)
        return invalidArgError("dcpt: deltas_per_entry is ",
                               deltasPerEntry,
                               " but delta-pair correlation needs at "
                               "least 3 (a pair plus one replayable "
                               "successor)");
    if (degree == 0)
        return invalidArgError(
            "dcpt: degree=0 would never prefetch; use the null "
            "prefetcher to disable prefetching");
    if (!isPowerOf2(lineBytes) || lineBytes == 0)
        return invalidArgError("dcpt: line_bytes ", lineBytes,
                               " is not a power of two");
    return Status();
}

DcptPrefetcher::DcptPrefetcher(const DcptConfig &cfg, std::string name)
    : Prefetcher(std::move(name)), cfg_(cfg), table_(cfg.tableEntries)
{
    fatal_if(!cfg.validate().ok(), cfg.validate().toString());
    for (Entry &e : table_)
        e.deltas.assign(cfg_.deltasPerEntry, 0);
    stats().add(trains_);
    stats().add(matches_);
    stats().add(issued_);
    stats().add(filtered_);
}

DcptPrefetcher::Entry *
DcptPrefetcher::lookupOrAllocate(Addr pc)
{
    Entry *victim = nullptr;
    for (Entry &e : table_) {
        if (e.valid && e.pc == pc) {
            e.stamp = ++stampCounter_;
            return &e;
        }
        if (!e.valid) {
            if (!victim || victim->valid)
                victim = &e;
        } else if (!victim || (victim->valid && e.stamp < victim->stamp)) {
            victim = &e;
        }
    }
    victim->pc = pc;
    victim->lastAddr = 0;
    victim->lastPrefetch = 0;
    victim->head = 0;
    victim->count = 0;
    victim->valid = true;
    victim->stamp = ++stampCounter_;
    return victim;
}

void
DcptPrefetcher::pushDelta(Entry &e, std::int64_t delta)
{
    if (e.count == cfg_.deltasPerEntry) {
        e.deltas[e.head] = delta;
        e.head = (e.head + 1) % cfg_.deltasPerEntry;
    } else {
        e.deltas[(e.head + e.count) % cfg_.deltasPerEntry] = delta;
        ++e.count;
    }
    ++trains_;
}

std::int64_t
DcptPrefetcher::deltaAt(const Entry &e, unsigned i) const
{
    // i = 0 names the oldest held delta.
    return e.deltas[(e.head + i) % cfg_.deltasPerEntry];
}

void
DcptPrefetcher::predict(Entry &e, Addr line, Tick when)
{
    if (e.count < 3)
        return;

    // Find the most recent earlier occurrence of the freshest delta
    // pair; everything after the matched pair is the predicted
    // continuation of the pattern.
    const std::int64_t d1 = deltaAt(e, e.count - 2);
    const std::int64_t d2 = deltaAt(e, e.count - 1);
    unsigned match = e.count; // sentinel: no match
    for (unsigned i = e.count - 1; i-- > 1;) {
        if (deltaAt(e, i - 1) == d1 && deltaAt(e, i) == d2) {
            match = i;
            break;
        }
    }
    if (match == e.count)
        return;
    ++matches_;

    // Replay the deltas that followed the match. The in-flight
    // filter: a candidate equal to the last line prefetched means
    // this walk has caught up with what is already requested, so
    // the prefix up to it is discarded rather than re-issued.
    Addr addr = line;
    std::vector<Addr> cand;
    for (unsigned i = match + 1;
         i < e.count && cand.size() < cfg_.degree; ++i) {
        addr += static_cast<Addr>(deltaAt(e, i) *
                                  static_cast<std::int64_t>(
                                      cfg_.lineBytes));
        if (addr == e.lastPrefetch) {
            filtered_ += cand.size() + 1;
            cand.clear();
            continue;
        }
        cand.push_back(addr);
    }
    for (Addr a : cand) {
        engine_->issuePrefetch(a, when);
        ++issued_;
        e.lastPrefetch = a;
    }
}

void
DcptPrefetcher::observeAccess(const L2AccessInfo &info)
{
    // Like the GHB, DCPT trains on the load-miss stream including
    // misses averted by the prefetch buffer (data only: instruction
    // fetches carry no useful per-PC delta signal).
    if (info.isInst || (!info.offChip && !info.prefBufHit))
        return;

    Entry *e = lookupOrAllocate(info.pc);
    if (e->lastAddr != 0 && info.lineAddr != e->lastAddr) {
        const std::int64_t delta =
            (static_cast<std::int64_t>(info.lineAddr) -
             static_cast<std::int64_t>(e->lastAddr)) /
            static_cast<std::int64_t>(cfg_.lineBytes);
        pushDelta(*e, delta);
    }
    e->lastAddr = info.lineAddr;
    predict(*e, info.lineAddr, info.when);
}

void
DcptPrefetcher::audit(AuditContext &ctx) const
{
    for (std::size_t i = 0; i < table_.size(); ++i) {
        const Entry &e = table_[i];
        ctx.check(e.deltas.size() == cfg_.deltasPerEntry,
                  "ring_capacity_fixed", "entry ", i, " holds ",
                  e.deltas.size(), " delta slots, configured ",
                  cfg_.deltasPerEntry);
        ctx.check(e.head < cfg_.deltasPerEntry, "ring_head_in_range",
                  "entry ", i, " head ", e.head, " of ",
                  cfg_.deltasPerEntry);
        ctx.check(e.count <= cfg_.deltasPerEntry,
                  "ring_count_within_capacity", "entry ", i, " holds ",
                  e.count, " deltas of ", cfg_.deltasPerEntry);
        ctx.check(e.stamp <= stampCounter_, "stamp_not_from_future",
                  "entry ", i, " stamp ", e.stamp, " exceeds counter ",
                  stampCounter_);
        if (!e.valid)
            continue;
        for (std::size_t j = i + 1; j < table_.size(); ++j)
            ctx.check(!(table_[j].valid && table_[j].pc == e.pc),
                      "one_entry_per_pc", "pc 0x", std::hex, e.pc,
                      std::dec, " held by entries ", i, " and ", j);
    }
}

void
DcptPrefetcher::ckpt(ckpt::Archiver &ar)
{
    Prefetcher::ckpt(ar);
    ar.fixedVec(table_, [](ckpt::Archiver &a, Entry &e) {
        a.u64(e.pc);
        a.u64(e.lastAddr);
        a.u64(e.lastPrefetch);
        a.fixedVec(e.deltas, [](ckpt::Archiver &da, std::int64_t &d) {
            da.i64(d);
        }, "DCPT entry deltas");
        a.uns(e.head);
        a.uns(e.count);
        a.boolean(e.valid);
        a.u64(e.stamp);
    }, "DCPT entries");
    ar.u64(stampCounter_);
}

} // namespace ebcp
