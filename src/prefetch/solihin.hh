/**
 * @file
 * Solihin et al's memory-side correlation prefetcher [24] -- the
 * comparison point conceptually closest to EBCP (Sections 3.3.1 and
 * 5.3), since it too keeps its correlation table in main memory.
 *
 * The table maps each individual miss address to its successor misses
 * organized in levels: level k holds the k-th misses after the key,
 * with `width` most-recent candidates per level. On a miss, the entry
 * for that address supplies up to depth*width prefetch addresses.
 *
 * Key contrasts with EBCP, all modelled here:
 *  - keys are individual misses, not epoch triggers, so entries spend
 *    slots on same-epoch and next-epoch misses whose prefetches can
 *    never be timely (the table read costs a memory round trip);
 *  - the engine lives at the memory side, so its table reads do not
 *    cross the processor's buses (no read-bus occupancy) but still
 *    pay DRAM access latency before prefetches can issue.
 *
 * Configurations per the paper: Solihin 3,2 (depth 3, width 2) and
 * Solihin 6,1 (depth 6, width 1), both with 1M-entry tables.
 */

#ifndef EBCP_PREFETCH_SOLIHIN_HH
#define EBCP_PREFETCH_SOLIHIN_HH

#include <cstdint>
#include <vector>

#include "prefetch/prefetcher.hh"
#include "util/status.hh"
#include "util/circular_buffer.hh"
#include "util/flat_map.hh"

namespace ebcp
{

/** Solihin prefetcher configuration. */
struct SolihinConfig
{
    std::uint64_t tableEntries = 1ULL << 20;
    unsigned depth = 3; //!< NumLevels
    unsigned width = 2; //!< NumSucc per level
    Tick tableAccessLatency = 500; //!< DRAM-side table read latency

    /** Coded rejection of nonsense values (factory gate). */
    Status validate() const;

    static SolihinConfig
    depth3width2()
    {
        return {};
    }

    static SolihinConfig
    depth6width1()
    {
        SolihinConfig c;
        c.depth = 6;
        c.width = 1;
        return c;
    }
};

/** The memory-side correlation prefetcher. */
class SolihinPrefetcher : public Prefetcher
{
  public:
    explicit SolihinPrefetcher(const SolihinConfig &cfg,
                               std::string name = "solihin");

    void observeAccess(const L2AccessInfo &info) override;

    /** Serialize or restore all learned state (checkpointing). */
    void ckpt(ckpt::Archiver &ar) override;

    /** Host hash-map probe counters (throughput bench). */
    const FlatMapStats &mapStats() const { return table_.stats(); }

  private:
    struct Level
    {
        std::vector<Addr> succ; //!< MRU-first successors
    };

    struct Entry
    {
        Addr tag = InvalidAddr;
        std::vector<Level> levels;
    };

    std::uint64_t indexOf(Addr key) const;
    void train(Addr new_miss);
    void predict(const L2AccessInfo &info);

    SolihinConfig cfg_;
    FlatMap<Entry> table_;
    CircularBuffer<Addr> recentMisses_;
    Tick lastMissTick_ = 0;

    Scalar trains_{"trains", "successor updates recorded"};
    Scalar matches_{"matches", "lookups that matched the tag"};
    Scalar issued_{"issued", "prefetches handed to the engine"};
};

} // namespace ebcp

#endif // EBCP_PREFETCH_SOLIHIN_HH
