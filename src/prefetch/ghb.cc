#include "prefetch/ghb.hh"

#include <algorithm>

#include "ckpt/archiver.hh"
#include "util/bitfield.hh"
#include "util/logging.hh"

namespace ebcp
{

Status
GhbConfig::validate() const
{
    if (indexEntries == 0 || !isPowerOf2(indexEntries))
        return invalidArgError("ghb: index_entries ", indexEntries,
                               " must be a nonzero power of two");
    if (ghbEntries == 0)
        return invalidArgError("ghb: ghb_entries must be nonzero");
    if (depth == 0)
        return invalidArgError(
            "ghb: depth=0 would never prefetch; use the null "
            "prefetcher to disable prefetching");
    if (maxHistory < 4)
        return invalidArgError("ghb: max_history ", maxHistory,
                               " is below the 4 deltas pair "
                               "correlation needs");
    return Status();
}

GhbPrefetcher::GhbPrefetcher(const GhbConfig &cfg, std::string name)
    : Prefetcher(std::move(name)), cfg_(cfg), ghb_(cfg.ghbEntries),
      index_(cfg.indexEntries)
{
    fatal_if(!isPowerOf2(cfg.indexEntries),
             "GHB index table size must be a power of two");
    stats().add(inserts_);
    stats().add(correlations_);
    stats().add(issued_);
}

std::uint64_t
GhbPrefetcher::keyOf(const L2AccessInfo &info) const
{
    // Loads localize on the load PC; all instruction misses share one
    // stream (their "PC" is the fetch address itself, which is what
    // delta correlation should run over).
    return info.isInst ? 1 : info.pc;
}

void
GhbPrefetcher::insert(std::uint64_t key, Addr line_addr)
{
    const std::size_t islot = mix64(key) & (cfg_.indexEntries - 1);
    IndexEntry &ie = index_[islot];

    const std::uint64_t my_seq = seq_++;
    GhbEntry &ge = ghb_[my_seq % cfg_.ghbEntries];
    ge.addr = line_addr;
    ge.key = key;
    ge.valid = true;
    ge.prev = (ie.valid && ie.key == key) ? ie.head : NoLink;

    ie.key = key;
    ie.head = my_seq;
    ie.valid = true;
    ++inserts_;
}

void
GhbPrefetcher::history(std::uint64_t key, std::vector<Addr> &out) const
{
    out.clear();
    const std::size_t islot = mix64(key) & (cfg_.indexEntries - 1);
    const IndexEntry &ie = index_[islot];
    if (!ie.valid || ie.key != key)
        return;

    std::uint64_t cur = ie.head;
    while (cur != NoLink && out.size() < cfg_.maxHistory) {
        // A link is stale once the circular buffer wrapped past it.
        if (cur + cfg_.ghbEntries < seq_)
            break;
        const GhbEntry &ge = ghb_[cur % cfg_.ghbEntries];
        if (!ge.valid || ge.key != key)
            break;
        out.push_back(ge.addr);
        cur = ge.prev;
    }
    // Walked newest-to-oldest; flip to oldest-first.
    std::reverse(out.begin(), out.end());
}

void
GhbPrefetcher::observeAccess(const L2AccessInfo &info)
{
    // Targets L2 misses (and their would-be equivalents) only.
    if (!info.offChip && !info.prefBufHit)
        return;

    const std::uint64_t key = keyOf(info);
    insert(key, info.lineAddr);

    static thread_local std::vector<Addr> hist;
    history(key, hist);
    if (hist.size() < 4)
        return;

    // Delta correlation: find the most recent earlier occurrence of
    // the final delta pair.
    std::vector<std::int64_t> deltas;
    deltas.reserve(hist.size() - 1);
    for (std::size_t i = 1; i < hist.size(); ++i)
        deltas.push_back(static_cast<std::int64_t>(hist[i]) -
                         static_cast<std::int64_t>(hist[i - 1]));

    const std::int64_t d1 = deltas[deltas.size() - 2];
    const std::int64_t d2 = deltas[deltas.size() - 1];

    // Search most-recent-first for an earlier occurrence of the final
    // delta pair; overlapping occurrences are legal (a run of equal
    // deltas matches itself one position back).
    for (std::size_t i = deltas.size() - 1; i-- > 1;) {
        if (deltas[i - 1] == d1 && deltas[i] == d2) {
            ++correlations_;
            // Replay the deltas that followed the match.
            Addr p = info.lineAddr;
            unsigned issued = 0;
            for (std::size_t j = i + 1;
                 j < deltas.size() && issued < cfg_.depth; ++j) {
                p = static_cast<Addr>(static_cast<std::int64_t>(p) +
                                      deltas[j]);
                engine_->issuePrefetch(p, info.when);
                ++issued_;
                ++issued;
            }
            break;
        }
    }
}


void
GhbPrefetcher::ckpt(ckpt::Archiver &ar)
{
    Prefetcher::ckpt(ar);
    ar.fixedVec(ghb_, [](ckpt::Archiver &a, GhbEntry &e) {
        a.u64(e.addr);
        a.u64(e.prev);
        a.u64(e.key);
        a.boolean(e.valid);
    }, "GHB entries");
    ar.fixedVec(index_, [](ckpt::Archiver &a, IndexEntry &e) {
        a.u64(e.key);
        a.u64(e.head);
        a.boolean(e.valid);
    }, "GHB index");
    ar.u64(seq_);
}

} // namespace ebcp
