#include "prefetch/sms.hh"

#include "ckpt/archiver.hh"
#include "util/bitfield.hh"
#include "util/logging.hh"

namespace ebcp
{

Status
SmsConfig::validate() const
{
    if (lineBytes == 0 || !isPowerOf2(lineBytes))
        return invalidArgError("sms: line_bytes ", lineBytes,
                               " must be a nonzero power of two");
    const unsigned lines = lineBytes ? regionBytes / lineBytes : 0;
    if (lines == 0 || lines > 32)
        return invalidArgError("sms: region_bytes ", regionBytes,
                               " / line_bytes ", lineBytes, " yields ",
                               lines, " lines per region, outside "
                               "[1, 32] (the pattern bitmap width)");
    if (agtEntries == 0)
        return invalidArgError("sms: agt_entries must be nonzero");
    if (phtSets == 0 || !isPowerOf2(phtSets))
        return invalidArgError("sms: pht_sets ", phtSets,
                               " must be a nonzero power of two");
    if (phtWays == 0)
        return invalidArgError("sms: pht_ways must be nonzero");
    return Status();
}

SmsPrefetcher::SmsPrefetcher(const SmsConfig &cfg)
    : Prefetcher("sms"), cfg_(cfg),
      linesPerRegion_(cfg.regionBytes / cfg.lineBytes),
      agt_(cfg.agtEntries),
      pht_(static_cast<std::size_t>(cfg.phtSets) * cfg.phtWays)
{
    fatal_if(linesPerRegion_ == 0 || linesPerRegion_ > 32,
             "SMS pattern must fit in 32 bits");
    fatal_if(!isPowerOf2(cfg.phtSets), "PHT sets must be a power of two");
    stats().add(generations_);
    stats().add(patternHits_);
    stats().add(issued_);
}

std::uint64_t
SmsPrefetcher::triggerSig(Addr pc, unsigned offset) const
{
    // The trigger signature is (PC, offset-within-region): the same
    // code touching the same relative first line replays the same
    // spatial footprint.
    return mix64((pc << 6) ^ offset);
}

SmsPrefetcher::AgtEntry *
SmsPrefetcher::findRegion(Addr region_base)
{
    for (AgtEntry &e : agt_)
        if (e.valid && e.regionBase == region_base)
            return &e;
    return nullptr;
}

void
SmsPrefetcher::endGeneration(AgtEntry &e)
{
    ++generations_;
    phtTrain(e.trigger, e.pattern);
    e.valid = false;
}

void
SmsPrefetcher::phtTrain(std::uint64_t trigger, std::uint32_t pattern)
{
    const std::size_t set = trigger & (cfg_.phtSets - 1);
    for (unsigned w = 0; w < cfg_.phtWays; ++w) {
        PhtEntry &e = pht_[set * cfg_.phtWays + w];
        if (e.valid && e.trigger == trigger) {
            e.pattern = pattern;
            e.stamp = ++stampCounter_;
            return;
        }
    }
    PhtEntry *victim = nullptr;
    for (unsigned w = 0; w < cfg_.phtWays; ++w) {
        PhtEntry &e = pht_[set * cfg_.phtWays + w];
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (!victim || e.stamp < victim->stamp)
            victim = &e;
    }
    victim->trigger = trigger;
    victim->pattern = pattern;
    victim->valid = true;
    victim->stamp = ++stampCounter_;
}

bool
SmsPrefetcher::phtLookup(std::uint64_t trigger, std::uint32_t &pattern)
{
    const std::size_t set = trigger & (cfg_.phtSets - 1);
    for (unsigned w = 0; w < cfg_.phtWays; ++w) {
        PhtEntry &e = pht_[set * cfg_.phtWays + w];
        if (e.valid && e.trigger == trigger) {
            e.stamp = ++stampCounter_;
            pattern = e.pattern;
            return true;
        }
    }
    return false;
}

void
SmsPrefetcher::observeAccess(const L2AccessInfo &info)
{
    // SMS targets load misses only; it trains on the L1 data-miss
    // stream (every access the prefetcher control sees).
    if (info.isInst)
        return;

    const Addr region = alignDown(info.lineAddr, cfg_.regionBytes);
    const unsigned offset = static_cast<unsigned>(
        (info.lineAddr - region) / cfg_.lineBytes);

    if (AgtEntry *e = findRegion(region)) {
        // Accumulate into the active generation.
        e->pattern |= (1u << offset);
        e->stamp = ++stampCounter_;
        return;
    }

    // New region: this access is a trigger.
    const std::uint64_t sig = triggerSig(info.pc, offset);

    std::uint32_t pattern = 0;
    if (phtLookup(sig, pattern)) {
        ++patternHits_;
        for (unsigned l = 0; l < linesPerRegion_; ++l) {
            if (l == offset || !(pattern & (1u << l)))
                continue;
            engine_->issuePrefetch(region + l * cfg_.lineBytes,
                                   info.when);
            ++issued_;
        }
    }

    // Open a generation, evicting the LRU one (its pattern is
    // committed to the PHT -- eviction ends a generation).
    AgtEntry *victim = nullptr;
    for (AgtEntry &e : agt_) {
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (!victim || e.stamp < victim->stamp)
            victim = &e;
    }
    if (victim->valid)
        endGeneration(*victim);
    victim->regionBase = region;
    victim->trigger = sig;
    victim->pattern = (1u << offset);
    victim->valid = true;
    victim->stamp = ++stampCounter_;
}


void
SmsPrefetcher::ckpt(ckpt::Archiver &ar)
{
    Prefetcher::ckpt(ar);
    ar.fixedVec(agt_, [](ckpt::Archiver &a, AgtEntry &e) {
        a.u64(e.regionBase);
        a.u64(e.trigger);
        a.u32(e.pattern);
        a.boolean(e.valid);
        a.u64(e.stamp);
    }, "AGT entries");
    ar.fixedVec(pht_, [](ckpt::Archiver &a, PhtEntry &e) {
        a.u64(e.trigger);
        a.u32(e.pattern);
        a.boolean(e.valid);
        a.u64(e.stamp);
    }, "SMS PHT entries");
    ar.u64(stampCounter_);
}

} // namespace ebcp
