#include "prefetch/amc.hh"

#include <algorithm>

#include "ckpt/containers.hh"
#include "util/bitfield.hh"
#include "util/logging.hh"
#include "verify/audit.hh"

namespace ebcp
{

Status
AmcConfig::validate() const
{
    if (tableEntries == 0 || !isPowerOf2(tableEntries))
        return invalidArgError("amc: table_entries ", tableEntries,
                               " must be a nonzero power of two");
    if (width == 0)
        return invalidArgError("amc: width must be nonzero");
    if (window == 0)
        return invalidArgError("amc: window must be nonzero");
    if (degree == 0)
        return invalidArgError(
            "amc: degree=0 would never prefetch; use the null "
            "prefetcher to disable prefetching");
    return Status();
}

AmcPrefetcher::AmcPrefetcher(const AmcConfig &cfg, std::string name)
    : Prefetcher(std::move(name)), cfg_(cfg),
      recentAccesses_(cfg.window == 0 ? 1 : cfg.window)
{
    fatal_if(!cfg.validate().ok(), cfg.validate().toString());
    stats().add(trains_);
    stats().add(matches_);
    stats().add(issued_);
}

std::uint64_t
AmcPrefetcher::indexOf(Addr key) const
{
    return mix64(key) & (cfg_.tableEntries - 1);
}

void
AmcPrefetcher::train(Addr miss_line)
{
    // Credit the miss to each recent access (newest first): the next
    // time any of those lines is touched -- hit or miss -- this miss
    // is a prediction candidate.
    for (std::size_t k = 0; k < recentAccesses_.size(); ++k) {
        const Addr key =
            recentAccesses_.at(recentAccesses_.size() - 1 - k);
        if (key == miss_line)
            continue;
        Entry &e = table_[indexOf(key)];
        if (e.tag != key) {
            e.tag = key;
            e.succ.clear();
        }
        auto it = std::find(e.succ.begin(), e.succ.end(), miss_line);
        if (it != e.succ.end())
            e.succ.erase(it);
        e.succ.insert(e.succ.begin(), miss_line);
        if (e.succ.size() > cfg_.width)
            e.succ.pop_back();
        ++trains_;
    }
}

void
AmcPrefetcher::predict(Addr line, Tick when)
{
    // Breadth-first through the correlation graph: the key's direct
    // successors first, then successors of successors, until the
    // degree is exhausted. The frontier is tiny (degree-bounded), so
    // linear dedup beats any set structure.
    std::vector<Addr> frontier{line};
    std::vector<Addr> named;
    for (std::size_t fi = 0;
         fi < frontier.size() && named.size() < cfg_.degree; ++fi) {
        const Entry *e = table_.find(indexOf(frontier[fi]));
        if (!e || e->tag != frontier[fi])
            continue;
        ++matches_;
        for (Addr a : e->succ) {
            if (named.size() >= cfg_.degree)
                break;
            if (a == line ||
                std::find(named.begin(), named.end(), a) != named.end())
                continue;
            named.push_back(a);
            frontier.push_back(a);
        }
    }
    for (Addr a : named) {
        engine_->issuePrefetch(a, when);
        ++issued_;
    }
}

void
AmcPrefetcher::observeAccess(const L2AccessInfo &info)
{
    // Data stream only; the access side of the correlation includes
    // L2 hits -- that is the entire point of the scheme.
    if (info.isInst)
        return;

    predict(info.lineAddr, info.when);

    // The miss side trains against the access window (misses averted
    // by the prefetch buffer still train, like the GHB, so success
    // does not starve the table).
    if (info.offChip || info.prefBufHit)
        train(info.lineAddr);

    recentAccesses_.push(info.lineAddr);
}

void
AmcPrefetcher::audit(AuditContext &ctx) const
{
    ctx.check(table_.size() <= cfg_.tableEntries,
              "table_within_capacity", table_.size(),
              " populated slots in a ", cfg_.tableEntries,
              "-entry table");
    table_.forEach([&](std::uint64_t index, const Entry &e) {
        ctx.check(index < cfg_.tableEntries, "index_in_range",
                  "slot key ", index, " outside the ",
                  cfg_.tableEntries, "-entry index space");
        ctx.check(e.succ.size() <= cfg_.width, "width_bounded",
                  "entry for line 0x", std::hex, e.tag, std::dec,
                  " holds ", e.succ.size(), " successors of ",
                  cfg_.width);
        ctx.check(e.tag != InvalidAddr, "tag_valid",
                  "populated slot ", index, " with an invalid tag");
    });
    ctx.check(recentAccesses_.size() <= cfg_.window,
              "window_bounded", recentAccesses_.size(),
              " recent accesses of ", cfg_.window);
}

void
AmcPrefetcher::ckpt(ckpt::Archiver &ar)
{
    Prefetcher::ckpt(ar);
    ckpt::ckptFlatMap(ar, table_, [](ckpt::Archiver &a, Entry &e) {
        a.u64(e.tag);
        a.vecU64(e.succ);
    });
    ckpt::ckptCircularBuffer(ar, recentAccesses_,
                             [](ckpt::Archiver &a, Addr &addr) {
        a.u64(addr);
    });
}

} // namespace ebcp
