/**
 * @file
 * Tag Correlating Prefetcher (TCP), after Hu et al [15] -- the
 * paper's second comparison point (Section 5.3).
 *
 * TCP exploits correlation among cache *tags* rather than full
 * addresses: a Tag History Table (THT), indexed by cache set, records
 * the last two tags that missed in that set; a Pattern History Table
 * (PHT), indexed by a hash of the tag history, predicts the next tag
 * for that set. A predicted (tag, set) pair names a line to prefetch.
 *
 * Per the paper's configuration the THT has 128 entries (matching the
 * L1's 128 sets) and the PHT is 16-way: TCP small = 2048 PHT sets
 * (~256KB), TCP large = 32K PHT sets (~4MB). TCP targets load misses
 * only.
 */

#ifndef EBCP_PREFETCH_TCP_HH
#define EBCP_PREFETCH_TCP_HH

#include <cstdint>
#include <vector>

#include "prefetch/prefetcher.hh"
#include "util/status.hh"

namespace ebcp
{

/** TCP configuration. */
struct TcpConfig
{
    unsigned thtEntries = 128; //!< one per L1 set
    unsigned phtSets = 2048;
    unsigned phtWays = 16;
    unsigned lineBytes = 64;
    unsigned l1Sets = 128;     //!< 32KB / 4-way / 64B
    unsigned degree = 6;       //!< prefetches per trigger

    /** Coded rejection of nonsense values (factory gate). */
    Status validate() const;

    static TcpConfig
    small()
    {
        return {};
    }

    static TcpConfig
    large()
    {
        TcpConfig c;
        c.phtSets = 32 * 1024;
        return c;
    }
};

/** The tag-correlating prefetcher. */
class TcpPrefetcher : public Prefetcher
{
  public:
    explicit TcpPrefetcher(const TcpConfig &cfg, std::string name = "tcp");

    void observeAccess(const L2AccessInfo &info) override;

    /** Serialize or restore all learned state (checkpointing). */
    void ckpt(ckpt::Archiver &ar) override;

  private:
    struct PhtEntry
    {
        std::uint64_t tagHist = 0; //!< hashed (t2, t1, set) tag
        Addr nextTag = 0;          //!< predicted successor tag
        bool valid = false;
        std::uint64_t stamp = 0;
    };

    struct ThtEntry
    {
        Addr t1 = 0; //!< most recent missing tag in this set
        Addr t2 = 0; //!< second most recent
        unsigned count = 0;
    };

    /** Hash a (set, older tags) history into a PHT key. */
    std::uint64_t histKey(unsigned set, Addr t2, Addr t1) const;

    /** PHT lookup; @return predicted tag or InvalidAddr. */
    Addr phtLookup(std::uint64_t key);

    /** PHT train: history @p key is followed by @p next_tag. */
    void phtTrain(std::uint64_t key, Addr next_tag);

    TcpConfig cfg_;
    unsigned setShift_;
    unsigned tagShift_;
    std::vector<ThtEntry> tht_;
    std::vector<PhtEntry> pht_;
    std::uint64_t stampCounter_ = 0;

    Scalar trains_{"trains", "PHT training updates"};
    Scalar predictions_{"predictions", "PHT hits"};
    Scalar issued_{"issued", "prefetches handed to the engine"};
};

} // namespace ebcp

#endif // EBCP_PREFETCH_TCP_HH
