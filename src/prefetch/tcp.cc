#include "prefetch/tcp.hh"

#include "ckpt/archiver.hh"
#include "util/bitfield.hh"
#include "util/logging.hh"

namespace ebcp
{

Status
TcpConfig::validate() const
{
    if (thtEntries == 0 || !isPowerOf2(thtEntries))
        return invalidArgError("tcp: tht_entries ", thtEntries,
                               " must be a nonzero power of two");
    if (phtSets == 0 || !isPowerOf2(phtSets))
        return invalidArgError("tcp: pht_sets ", phtSets,
                               " must be a nonzero power of two");
    if (phtWays == 0)
        return invalidArgError("tcp: pht_ways must be nonzero");
    if (l1Sets == 0 || !isPowerOf2(l1Sets))
        return invalidArgError("tcp: l1_sets ", l1Sets,
                               " must be a nonzero power of two");
    if (lineBytes == 0 || !isPowerOf2(lineBytes))
        return invalidArgError("tcp: line_bytes ", lineBytes,
                               " must be a nonzero power of two");
    if (degree == 0)
        return invalidArgError(
            "tcp: degree=0 would never prefetch; use the null "
            "prefetcher to disable prefetching");
    return Status();
}

TcpPrefetcher::TcpPrefetcher(const TcpConfig &cfg, std::string name)
    : Prefetcher(std::move(name)), cfg_(cfg),
      setShift_(floorLog2(cfg.lineBytes)),
      tagShift_(floorLog2(cfg.lineBytes) + floorLog2(cfg.l1Sets)),
      tht_(cfg.thtEntries),
      pht_(static_cast<std::size_t>(cfg.phtSets) * cfg.phtWays)
{
    fatal_if(!isPowerOf2(cfg.phtSets), "PHT sets must be a power of two");
    fatal_if(!isPowerOf2(cfg.l1Sets), "L1 sets must be a power of two");
    stats().add(trains_);
    stats().add(predictions_);
    stats().add(issued_);
}

std::uint64_t
TcpPrefetcher::histKey(unsigned set, Addr t2, Addr t1) const
{
    return mix64((t2 << 20) ^ (t1 << 2) ^ set);
}

Addr
TcpPrefetcher::phtLookup(std::uint64_t key)
{
    const std::size_t set = key & (cfg_.phtSets - 1);
    for (unsigned w = 0; w < cfg_.phtWays; ++w) {
        PhtEntry &e = pht_[set * cfg_.phtWays + w];
        if (e.valid && e.tagHist == key) {
            e.stamp = ++stampCounter_;
            ++predictions_;
            return e.nextTag;
        }
    }
    return InvalidAddr;
}

void
TcpPrefetcher::phtTrain(std::uint64_t key, Addr next_tag)
{
    const std::size_t set = key & (cfg_.phtSets - 1);
    for (unsigned w = 0; w < cfg_.phtWays; ++w) {
        PhtEntry &e = pht_[set * cfg_.phtWays + w];
        if (e.valid && e.tagHist == key) {
            e.nextTag = next_tag;
            e.stamp = ++stampCounter_;
            ++trains_;
            return;
        }
    }
    PhtEntry *victim = nullptr;
    for (unsigned w = 0; w < cfg_.phtWays; ++w) {
        PhtEntry &e = pht_[set * cfg_.phtWays + w];
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (!victim || e.stamp < victim->stamp)
            victim = &e;
    }
    victim->tagHist = key;
    victim->nextTag = next_tag;
    victim->valid = true;
    victim->stamp = ++stampCounter_;
    ++trains_;
}

void
TcpPrefetcher::observeAccess(const L2AccessInfo &info)
{
    // TCP targets load misses only, and trains on the L1 data-miss
    // stream.
    if (info.isInst)
        return;

    const Addr addr = info.lineAddr;
    const unsigned set =
        static_cast<unsigned>((addr >> setShift_) & (cfg_.l1Sets - 1));
    const Addr tag = addr >> tagShift_;

    ThtEntry &h = tht_[set & (cfg_.thtEntries - 1)];

    // Train: the history (t2, t1) in this set was followed by `tag`.
    if (h.count >= 2)
        phtTrain(histKey(set, h.t2, h.t1), tag);

    // Shift the tag history.
    h.t2 = h.t1;
    h.t1 = tag;
    if (h.count < 2)
        ++h.count;

    // Predict: chain next-tag predictions up to the degree.
    Addr pt2 = h.t2;
    Addr pt1 = h.t1;
    for (unsigned k = 0; k < cfg_.degree; ++k) {
        const Addr pred = phtLookup(histKey(set, pt2, pt1));
        if (pred == InvalidAddr)
            break;
        const Addr line = (pred << tagShift_) |
                          (static_cast<Addr>(set) << setShift_);
        engine_->issuePrefetch(line, info.when);
        ++issued_;
        pt2 = pt1;
        pt1 = pred;
    }
}


void
TcpPrefetcher::ckpt(ckpt::Archiver &ar)
{
    Prefetcher::ckpt(ar);
    ar.fixedVec(tht_, [](ckpt::Archiver &a, ThtEntry &e) {
        a.u64(e.t1);
        a.u64(e.t2);
        a.uns(e.count);
    }, "THT entries");
    ar.fixedVec(pht_, [](ckpt::Archiver &a, PhtEntry &e) {
        a.u64(e.tagHist);
        a.u64(e.nextTag);
        a.boolean(e.valid);
        a.u64(e.stamp);
    }, "PHT entries");
    ar.u64(stampCounter_);
}

} // namespace ebcp
