/**
 * @file
 * Global History Buffer prefetcher with PC/DC (delta correlation)
 * localization, after Nesbit & Smith [25] -- the paper's strongest
 * on-chip comparison point (Section 5.3).
 *
 * The GHB is a circular buffer of miss addresses; an index table maps
 * a localization key (the load PC; instruction misses share one
 * global key) to the most recent GHB entry for that key, and entries
 * chain to the previous entry of the same key. Delta correlation
 * computes the delta stream of the key's recent history, finds the
 * most recent earlier occurrence of the last delta pair, and replays
 * the deltas that followed it, up to the prefetch depth.
 *
 * Both structures are on-chip: no table memory traffic, and lookups
 * are instantaneous -- but capacity is bounded (GHB small = 16K+16K
 * entries ~ 256KB; GHB large = 256K+256K ~ 4MB), which is exactly
 * what Figure 9 probes.
 */

#ifndef EBCP_PREFETCH_GHB_HH
#define EBCP_PREFETCH_GHB_HH

#include <cstdint>
#include <vector>

#include "prefetch/prefetcher.hh"
#include "util/status.hh"

namespace ebcp
{

/** GHB PC/DC configuration. */
struct GhbConfig
{
    unsigned indexEntries = 16 * 1024; //!< index table entries
    unsigned ghbEntries = 16 * 1024;   //!< history buffer entries
    unsigned depth = 6;                //!< prefetch depth
    unsigned maxHistory = 16;          //!< chain walk bound

    /** Coded rejection of nonsense values (factory gate). */
    Status validate() const;

    /** GHB small (256KB) per the paper. */
    static GhbConfig
    small()
    {
        return {16 * 1024, 16 * 1024, 6, 16};
    }

    /** GHB large (4MB) per the paper. */
    static GhbConfig
    large()
    {
        return {256 * 1024, 256 * 1024, 6, 16};
    }
};

/** The GHB PC/DC prefetcher. */
class GhbPrefetcher : public Prefetcher
{
  public:
    explicit GhbPrefetcher(const GhbConfig &cfg, std::string name = "ghb");

    void observeAccess(const L2AccessInfo &info) override;

    /** Serialize or restore all learned state (checkpointing). */
    void ckpt(ckpt::Archiver &ar) override;

  private:
    /** One GHB slot. */
    struct GhbEntry
    {
        Addr addr = 0;
        std::uint64_t prev = NoLink; //!< global seq of same-key pred.
        std::uint64_t key = 0;
        bool valid = false;
    };

    static constexpr std::uint64_t NoLink = ~std::uint64_t{0};

    /** Index-table slot: key -> newest GHB seq for that key. */
    struct IndexEntry
    {
        std::uint64_t key = 0;
        std::uint64_t head = NoLink;
        bool valid = false;
    };

    std::uint64_t keyOf(const L2AccessInfo &info) const;
    void insert(std::uint64_t key, Addr line_addr);

    /** Collect the key's recent addresses, oldest first. */
    void history(std::uint64_t key, std::vector<Addr> &out) const;

    GhbConfig cfg_;
    std::vector<GhbEntry> ghb_;
    std::vector<IndexEntry> index_;
    std::uint64_t seq_ = 0; //!< global insertion counter

    Scalar inserts_{"inserts", "miss addresses recorded"};
    Scalar correlations_{"correlations", "delta pairs matched"};
    Scalar issued_{"issued", "prefetches handed to the engine"};
};

} // namespace ebcp

#endif // EBCP_PREFETCH_GHB_HH
