/**
 * @file
 * The prefetcher interface.
 *
 * Mirroring Figure 2 of the paper, the prefetcher control sits in
 * front of the core-to-L2 crossbar: it observes every L1 miss request
 * sent to the L2 (and is told whether each also missed the L2 and
 * whether the prefetch buffer supplied it), so it sees the entire
 * per-thread miss stream. It acts through a PrefetchEngine, which
 * issues line prefetches and correlation-table memory traffic with
 * low priority.
 */

#ifndef EBCP_PREFETCH_PREFETCHER_HH
#define EBCP_PREFETCH_PREFETCHER_HH

#include <cstdint>
#include <string>

#include "mem/request.hh"
#include "stats/group.hh"
#include "util/event_trace.hh"
#include "util/types.hh"

namespace ebcp
{

namespace ckpt
{
class Archiver;
}

class AuditContext;
class PrefetchLedger;

/** Everything a prefetcher learns about one L2 access (an L1 miss). */
struct L2AccessInfo
{
    Addr pc = 0;          //!< PC of the access (the line PC for fetches)
    Addr lineAddr = 0;    //!< line-aligned physical address
    bool isInst = false;  //!< instruction fetch vs data load
    bool l2Hit = false;   //!< satisfied by the L2
    bool prefBufHit = false; //!< satisfied by the prefetch buffer
    bool offChip = false; //!< went to main memory (a real L2 miss)
    Tick when = 0;        //!< time the L2 was accessed
    Tick complete = 0;    //!< time the data was available
    unsigned coreId = 0;  //!< requesting core (CMP configurations);
                          //!< visible because the prefetcher control
                          //!< sits in front of the core-to-L2
                          //!< crossbar (Figure 2)
};

/** Services the hierarchy provides to prefetchers. */
class PrefetchEngine
{
  public:
    virtual ~PrefetchEngine() = default;

    /**
     * Prefetch the line containing @p line_addr, no earlier than
     * @p when, into the prefetch buffer.
     *
     * @param corr_index correlation-table entry to credit on a hit
     *        (pass has_corr=false for prefetchers without a
     *        main-memory table).
     * @param source PrefetchLedger source id crediting this issue
     *        (0 = unattributed; a composite controller tags each
     *        child engine with its own id so the ledger can score
     *        them separately).
     */
    virtual void issuePrefetch(Addr line_addr, Tick when,
                               std::uint64_t corr_index = 0,
                               bool has_corr = false,
                               unsigned source = 0) = 0;

    /** Low-priority main-memory read of a predictor-table line. */
    virtual MemAccessResult tableRead(Tick when) = 0;

    /** Low-priority main-memory write of a predictor-table line. */
    virtual MemAccessResult tableWrite(Tick when) = 0;

    /** Unloaded main-memory latency (for would-be-miss modelling). */
    virtual Tick memoryLatency() const = 0;
};

/** Abstract hardware prefetcher. */
class Prefetcher
{
  public:
    explicit Prefetcher(std::string name)
        : name_(std::move(name)), stats_(name_)
    {}

    virtual ~Prefetcher() = default;

    /** Called once per L1 miss request, after its outcome is known. */
    virtual void observeAccess(const L2AccessInfo &info) = 0;

    /**
     * Called when a demand access hits the prefetch buffer on an
     * entry that carries a correlation-table index (Section 3.4.3's
     * LRU refresh).
     */
    virtual void
    observePrefetchHit(Addr line_addr, std::uint64_t corr_index,
                       Tick when)
    {
        (void)line_addr;
        (void)corr_index;
        (void)when;
    }

    /** Wire the engine before simulation starts. */
    void setEngine(PrefetchEngine *engine) { engine_ = engine; }

    /**
     * Give the prefetcher read access to the lifecycle ledger the
     * hierarchy keeps for it. The default ignores it; adaptive
     * controllers (the composite) override this and sample per-source
     * accuracy/timeliness each calibration interval.
     */
    virtual void attachLedger(const PrefetchLedger &ledger)
    {
        (void)ledger;
    }

    /**
     * The measurement window is starting: the ledger's counters (and
     * all statistics) have just been reset. Controllers holding
     * monotone ledger samples must re-baseline them here.
     */
    virtual void beginMeasurement() {}

    /**
     * Attach lifecycle tracing. The default is a no-op; prefetchers
     * with internal machinery worth a timeline row (the EBCP's EMAB
     * and table traffic) override this and create sinks in @p log.
     */
    virtual void attachTraceLog(TraceLog &log) { (void)log; }

    /**
     * Re-derive this prefetcher's structural invariants. The default
     * has no state to audit; stateful prefetchers (the EBCP's table,
     * EMAB and allocation machinery) override it.
     */
    virtual void audit(AuditContext &ctx) const { (void)ctx; }

    const std::string &name() const { return name_; }
    StatGroup &stats() { return stats_; }

    /**
     * Serialize or restore this prefetcher's mutable state. The base
     * serializes the stat group; stateful prefetchers override, call
     * the base first, then serialize their own structures.
     */
    virtual void ckpt(ckpt::Archiver &ar);

  protected:
    PrefetchEngine *engine_ = nullptr;
    TraceSink *trace_ = nullptr; //!< set by attachTraceLog overrides

  private:
    std::string name_;
    StatGroup stats_;
};

/** A prefetcher that never prefetches (the no-prefetching baseline). */
class NullPrefetcher : public Prefetcher
{
  public:
    NullPrefetcher() : Prefetcher("null") {}
    void observeAccess(const L2AccessInfo &) override {}
};

} // namespace ebcp

#endif // EBCP_PREFETCH_PREFETCHER_HH
