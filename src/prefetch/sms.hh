/**
 * @file
 * Spatial Memory Streaming (SMS), after Somogyi et al [36] -- the
 * paper's fourth comparison point (Section 5.3).
 *
 * SMS learns, per (trigger PC, region offset) pair, the bit pattern
 * of lines touched within a 2KB spatial region generation. When a
 * region is next triggered the learned pattern streams prefetches for
 * every line it marks (up to 32 per trigger -- the one prefetcher in
 * the comparison allowed more than the uniform degree of 6).
 *
 * Structures per the paper: a combined 128-entry accumulation/filter
 * table and an on-chip 16K-entry, 16-way PHT (~128KB). SMS targets
 * load misses only (its weakness on the instruction-miss-heavy
 * TPC-W / SPECjAppServer2004 in Figure 9 follows from this).
 */

#ifndef EBCP_PREFETCH_SMS_HH
#define EBCP_PREFETCH_SMS_HH

#include <cstdint>
#include <vector>

#include "prefetch/prefetcher.hh"
#include "util/status.hh"

namespace ebcp
{

/** SMS configuration. */
struct SmsConfig
{
    unsigned regionBytes = 2048;  //!< spatial region size
    unsigned lineBytes = 64;      //!< 32 lines per region
    unsigned agtEntries = 128;    //!< accumulation/filter table
    unsigned phtSets = 1024;      //!< 16K entries / 16 ways
    unsigned phtWays = 16;

    /** Coded rejection of nonsense values (factory gate). */
    Status validate() const;
};

/** The spatial memory streaming prefetcher. */
class SmsPrefetcher : public Prefetcher
{
  public:
    explicit SmsPrefetcher(const SmsConfig &cfg = {});

    void observeAccess(const L2AccessInfo &info) override;

    /** Serialize or restore all learned state (checkpointing). */
    void ckpt(ckpt::Archiver &ar) override;

  private:
    /** Active region generation being recorded. */
    struct AgtEntry
    {
        Addr regionBase = InvalidAddr;
        std::uint64_t trigger = 0; //!< (pc, offset) signature
        std::uint32_t pattern = 0; //!< lines touched this generation
        bool valid = false;
        std::uint64_t stamp = 0;
    };

    /** Learned pattern. */
    struct PhtEntry
    {
        std::uint64_t trigger = 0;
        std::uint32_t pattern = 0;
        bool valid = false;
        std::uint64_t stamp = 0;
    };

    std::uint64_t triggerSig(Addr pc, unsigned offset) const;
    AgtEntry *findRegion(Addr region_base);
    void endGeneration(AgtEntry &e);
    void phtTrain(std::uint64_t trigger, std::uint32_t pattern);
    bool phtLookup(std::uint64_t trigger, std::uint32_t &pattern);

    SmsConfig cfg_;
    unsigned linesPerRegion_;
    std::vector<AgtEntry> agt_;
    std::vector<PhtEntry> pht_;
    std::uint64_t stampCounter_ = 0;

    Scalar generations_{"generations", "region generations recorded"};
    Scalar patternHits_{"pattern_hits", "trigger signatures found"};
    Scalar issued_{"issued", "prefetches handed to the engine"};
};

} // namespace ebcp

#endif // EBCP_PREFETCH_SMS_HH
