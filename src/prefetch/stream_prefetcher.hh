/**
 * @file
 * Stream prefetcher (Section 5.3's third comparison point).
 *
 * "Capable of tracking up to 32 streams and handles positive,
 * negative and non-unit strides. On the detection and confirmation of
 * a stream, it issues 6 prefetch requests and then attempts to keep 6
 * strides ahead of the request stream."
 *
 * Trains on the L1 data-miss stream and targets load misses only,
 * like the commercial implementations it stands in for.
 */

#ifndef EBCP_PREFETCH_STREAM_PREFETCHER_HH
#define EBCP_PREFETCH_STREAM_PREFETCHER_HH

#include <vector>

#include "prefetch/prefetcher.hh"
#include "util/status.hh"

namespace ebcp
{

/** Configuration of the stream prefetcher. */
struct StreamPrefetcherConfig
{
    unsigned streams = 32;       //!< concurrent stream trackers
    unsigned distance = 6;       //!< strides to run ahead
    unsigned trainConfirms = 2;  //!< stride repeats before streaming
    Addr maxStrideBytes = 4096;  //!< ignore wild deltas

    /** Coded rejection of nonsense values (factory gate). */
    Status validate() const;
};

/** The stream prefetcher. */
class StreamPrefetcher : public Prefetcher
{
  public:
    explicit StreamPrefetcher(const StreamPrefetcherConfig &cfg = {});

    void observeAccess(const L2AccessInfo &info) override;

    /** Serialize or restore all learned state (checkpointing). */
    void ckpt(ckpt::Archiver &ar) override;

  private:
    struct Stream
    {
        bool valid = false;
        Addr lastAddr = 0;
        std::int64_t stride = 0;
        unsigned confirms = 0;
        bool streaming = false;
        std::uint64_t lastUse = 0;
    };

    Stream *findMatch(Addr line_addr);
    Stream &allocate(Addr line_addr);

    StreamPrefetcherConfig cfg_;
    std::vector<Stream> streams_;
    std::uint64_t useCounter_ = 0;

    Scalar allocations_{"allocations", "stream trackers allocated"};
    Scalar confirmations_{"confirmations", "streams confirmed"};
    Scalar issued_{"issued", "prefetches handed to the engine"};
};

} // namespace ebcp

#endif // EBCP_PREFETCH_STREAM_PREFETCHER_HH
