# Empty dependencies file for fig6_table_size.
# This may be replaced when dependencies are built.
