file(REMOVE_RECURSE
  "../bench/fig8_bandwidth"
  "../bench/fig8_bandwidth.pdb"
  "CMakeFiles/fig8_bandwidth.dir/fig8_bandwidth.cc.o"
  "CMakeFiles/fig8_bandwidth.dir/fig8_bandwidth.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
