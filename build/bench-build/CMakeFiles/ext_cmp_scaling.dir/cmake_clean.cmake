file(REMOVE_RECURSE
  "../bench/ext_cmp_scaling"
  "../bench/ext_cmp_scaling.pdb"
  "CMakeFiles/ext_cmp_scaling.dir/ext_cmp_scaling.cc.o"
  "CMakeFiles/ext_cmp_scaling.dir/ext_cmp_scaling.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_cmp_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
