# Empty compiler generated dependencies file for ext_cmp_scaling.
# This may be replaced when dependencies are built.
