file(REMOVE_RECURSE
  "../bench/fig9_comparison"
  "../bench/fig9_comparison.pdb"
  "CMakeFiles/fig9_comparison.dir/fig9_comparison.cc.o"
  "CMakeFiles/fig9_comparison.dir/fig9_comparison.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
