# Empty dependencies file for fig7_prefetch_buffer.
# This may be replaced when dependencies are built.
