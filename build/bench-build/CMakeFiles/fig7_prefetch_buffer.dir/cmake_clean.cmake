file(REMOVE_RECURSE
  "../bench/fig7_prefetch_buffer"
  "../bench/fig7_prefetch_buffer.pdb"
  "CMakeFiles/fig7_prefetch_buffer.dir/fig7_prefetch_buffer.cc.o"
  "CMakeFiles/fig7_prefetch_buffer.dir/fig7_prefetch_buffer.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_prefetch_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
