file(REMOVE_RECURSE
  "CMakeFiles/ebcp_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/ebcp_bench_common.dir/bench_common.cc.o.d"
  "libebcp_bench_common.a"
  "libebcp_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ebcp_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
