# Empty compiler generated dependencies file for ebcp_bench_common.
# This may be replaced when dependencies are built.
