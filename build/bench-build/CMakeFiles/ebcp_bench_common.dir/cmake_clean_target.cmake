file(REMOVE_RECURSE
  "libebcp_bench_common.a"
)
