file(REMOVE_RECURSE
  "../bench/ext_ablation"
  "../bench/ext_ablation.pdb"
  "CMakeFiles/ext_ablation.dir/ext_ablation.cc.o"
  "CMakeFiles/ext_ablation.dir/ext_ablation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
