file(REMOVE_RECURSE
  "../bench/fig5_degree_metrics"
  "../bench/fig5_degree_metrics.pdb"
  "CMakeFiles/fig5_degree_metrics.dir/fig5_degree_metrics.cc.o"
  "CMakeFiles/fig5_degree_metrics.dir/fig5_degree_metrics.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_degree_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
