# Empty dependencies file for fig5_degree_metrics.
# This may be replaced when dependencies are built.
