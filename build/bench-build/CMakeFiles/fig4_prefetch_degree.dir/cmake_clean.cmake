file(REMOVE_RECURSE
  "../bench/fig4_prefetch_degree"
  "../bench/fig4_prefetch_degree.pdb"
  "CMakeFiles/fig4_prefetch_degree.dir/fig4_prefetch_degree.cc.o"
  "CMakeFiles/fig4_prefetch_degree.dir/fig4_prefetch_degree.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_prefetch_degree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
