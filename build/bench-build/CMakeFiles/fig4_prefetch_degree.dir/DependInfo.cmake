
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig4_prefetch_degree.cc" "bench-build/CMakeFiles/fig4_prefetch_degree.dir/fig4_prefetch_degree.cc.o" "gcc" "bench-build/CMakeFiles/fig4_prefetch_degree.dir/fig4_prefetch_degree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench-build/CMakeFiles/ebcp_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ebcp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ebcp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ebcp_prefetch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ebcp_epoch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ebcp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ebcp_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ebcp_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ebcp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ebcp_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ebcp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
