# Empty compiler generated dependencies file for ebcp_util.
# This may be replaced when dependencies are built.
