file(REMOVE_RECURSE
  "libebcp_util.a"
)
