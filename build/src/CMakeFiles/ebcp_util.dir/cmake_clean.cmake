file(REMOVE_RECURSE
  "CMakeFiles/ebcp_util.dir/util/config.cc.o"
  "CMakeFiles/ebcp_util.dir/util/config.cc.o.d"
  "CMakeFiles/ebcp_util.dir/util/logging.cc.o"
  "CMakeFiles/ebcp_util.dir/util/logging.cc.o.d"
  "CMakeFiles/ebcp_util.dir/util/str.cc.o"
  "CMakeFiles/ebcp_util.dir/util/str.cc.o.d"
  "libebcp_util.a"
  "libebcp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ebcp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
