
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/address_map.cc" "src/CMakeFiles/ebcp_trace.dir/trace/address_map.cc.o" "gcc" "src/CMakeFiles/ebcp_trace.dir/trace/address_map.cc.o.d"
  "/root/repo/src/trace/synthetic_workload.cc" "src/CMakeFiles/ebcp_trace.dir/trace/synthetic_workload.cc.o" "gcc" "src/CMakeFiles/ebcp_trace.dir/trace/synthetic_workload.cc.o.d"
  "/root/repo/src/trace/trace_file.cc" "src/CMakeFiles/ebcp_trace.dir/trace/trace_file.cc.o" "gcc" "src/CMakeFiles/ebcp_trace.dir/trace/trace_file.cc.o.d"
  "/root/repo/src/trace/workloads.cc" "src/CMakeFiles/ebcp_trace.dir/trace/workloads.cc.o" "gcc" "src/CMakeFiles/ebcp_trace.dir/trace/workloads.cc.o.d"
  "/root/repo/src/trace/zipf.cc" "src/CMakeFiles/ebcp_trace.dir/trace/zipf.cc.o" "gcc" "src/CMakeFiles/ebcp_trace.dir/trace/zipf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ebcp_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ebcp_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ebcp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ebcp_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ebcp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
