file(REMOVE_RECURSE
  "libebcp_trace.a"
)
