# Empty dependencies file for ebcp_trace.
# This may be replaced when dependencies are built.
