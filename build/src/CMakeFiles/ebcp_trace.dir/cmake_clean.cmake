file(REMOVE_RECURSE
  "CMakeFiles/ebcp_trace.dir/trace/address_map.cc.o"
  "CMakeFiles/ebcp_trace.dir/trace/address_map.cc.o.d"
  "CMakeFiles/ebcp_trace.dir/trace/synthetic_workload.cc.o"
  "CMakeFiles/ebcp_trace.dir/trace/synthetic_workload.cc.o.d"
  "CMakeFiles/ebcp_trace.dir/trace/trace_file.cc.o"
  "CMakeFiles/ebcp_trace.dir/trace/trace_file.cc.o.d"
  "CMakeFiles/ebcp_trace.dir/trace/workloads.cc.o"
  "CMakeFiles/ebcp_trace.dir/trace/workloads.cc.o.d"
  "CMakeFiles/ebcp_trace.dir/trace/zipf.cc.o"
  "CMakeFiles/ebcp_trace.dir/trace/zipf.cc.o.d"
  "libebcp_trace.a"
  "libebcp_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ebcp_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
