file(REMOVE_RECURSE
  "CMakeFiles/ebcp_cpu.dir/cpu/branch_predictor.cc.o"
  "CMakeFiles/ebcp_cpu.dir/cpu/branch_predictor.cc.o.d"
  "CMakeFiles/ebcp_cpu.dir/cpu/core_model.cc.o"
  "CMakeFiles/ebcp_cpu.dir/cpu/core_model.cc.o.d"
  "CMakeFiles/ebcp_cpu.dir/cpu/op_class.cc.o"
  "CMakeFiles/ebcp_cpu.dir/cpu/op_class.cc.o.d"
  "libebcp_cpu.a"
  "libebcp_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ebcp_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
