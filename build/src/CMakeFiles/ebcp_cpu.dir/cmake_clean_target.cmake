file(REMOVE_RECURSE
  "libebcp_cpu.a"
)
