# Empty dependencies file for ebcp_cpu.
# This may be replaced when dependencies are built.
