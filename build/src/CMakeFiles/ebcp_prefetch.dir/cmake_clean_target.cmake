file(REMOVE_RECURSE
  "libebcp_prefetch.a"
)
