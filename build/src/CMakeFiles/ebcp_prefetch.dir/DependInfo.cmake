
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/prefetch/ghb.cc" "src/CMakeFiles/ebcp_prefetch.dir/prefetch/ghb.cc.o" "gcc" "src/CMakeFiles/ebcp_prefetch.dir/prefetch/ghb.cc.o.d"
  "/root/repo/src/prefetch/nextline.cc" "src/CMakeFiles/ebcp_prefetch.dir/prefetch/nextline.cc.o" "gcc" "src/CMakeFiles/ebcp_prefetch.dir/prefetch/nextline.cc.o.d"
  "/root/repo/src/prefetch/sms.cc" "src/CMakeFiles/ebcp_prefetch.dir/prefetch/sms.cc.o" "gcc" "src/CMakeFiles/ebcp_prefetch.dir/prefetch/sms.cc.o.d"
  "/root/repo/src/prefetch/solihin.cc" "src/CMakeFiles/ebcp_prefetch.dir/prefetch/solihin.cc.o" "gcc" "src/CMakeFiles/ebcp_prefetch.dir/prefetch/solihin.cc.o.d"
  "/root/repo/src/prefetch/stream_prefetcher.cc" "src/CMakeFiles/ebcp_prefetch.dir/prefetch/stream_prefetcher.cc.o" "gcc" "src/CMakeFiles/ebcp_prefetch.dir/prefetch/stream_prefetcher.cc.o.d"
  "/root/repo/src/prefetch/tcp.cc" "src/CMakeFiles/ebcp_prefetch.dir/prefetch/tcp.cc.o" "gcc" "src/CMakeFiles/ebcp_prefetch.dir/prefetch/tcp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ebcp_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ebcp_epoch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ebcp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ebcp_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ebcp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
