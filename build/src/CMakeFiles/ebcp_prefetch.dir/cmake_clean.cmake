file(REMOVE_RECURSE
  "CMakeFiles/ebcp_prefetch.dir/prefetch/ghb.cc.o"
  "CMakeFiles/ebcp_prefetch.dir/prefetch/ghb.cc.o.d"
  "CMakeFiles/ebcp_prefetch.dir/prefetch/nextline.cc.o"
  "CMakeFiles/ebcp_prefetch.dir/prefetch/nextline.cc.o.d"
  "CMakeFiles/ebcp_prefetch.dir/prefetch/sms.cc.o"
  "CMakeFiles/ebcp_prefetch.dir/prefetch/sms.cc.o.d"
  "CMakeFiles/ebcp_prefetch.dir/prefetch/solihin.cc.o"
  "CMakeFiles/ebcp_prefetch.dir/prefetch/solihin.cc.o.d"
  "CMakeFiles/ebcp_prefetch.dir/prefetch/stream_prefetcher.cc.o"
  "CMakeFiles/ebcp_prefetch.dir/prefetch/stream_prefetcher.cc.o.d"
  "CMakeFiles/ebcp_prefetch.dir/prefetch/tcp.cc.o"
  "CMakeFiles/ebcp_prefetch.dir/prefetch/tcp.cc.o.d"
  "libebcp_prefetch.a"
  "libebcp_prefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ebcp_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
