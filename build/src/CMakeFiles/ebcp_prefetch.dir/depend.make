# Empty dependencies file for ebcp_prefetch.
# This may be replaced when dependencies are built.
