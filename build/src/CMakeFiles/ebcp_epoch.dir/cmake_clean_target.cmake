file(REMOVE_RECURSE
  "libebcp_epoch.a"
)
