file(REMOVE_RECURSE
  "CMakeFiles/ebcp_epoch.dir/epoch/epoch_tracker.cc.o"
  "CMakeFiles/ebcp_epoch.dir/epoch/epoch_tracker.cc.o.d"
  "CMakeFiles/ebcp_epoch.dir/epoch/mlp_model.cc.o"
  "CMakeFiles/ebcp_epoch.dir/epoch/mlp_model.cc.o.d"
  "libebcp_epoch.a"
  "libebcp_epoch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ebcp_epoch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
