# Empty compiler generated dependencies file for ebcp_epoch.
# This may be replaced when dependencies are built.
