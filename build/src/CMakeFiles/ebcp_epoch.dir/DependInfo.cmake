
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/epoch/epoch_tracker.cc" "src/CMakeFiles/ebcp_epoch.dir/epoch/epoch_tracker.cc.o" "gcc" "src/CMakeFiles/ebcp_epoch.dir/epoch/epoch_tracker.cc.o.d"
  "/root/repo/src/epoch/mlp_model.cc" "src/CMakeFiles/ebcp_epoch.dir/epoch/mlp_model.cc.o" "gcc" "src/CMakeFiles/ebcp_epoch.dir/epoch/mlp_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ebcp_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ebcp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
