file(REMOVE_RECURSE
  "libebcp_mem.a"
)
