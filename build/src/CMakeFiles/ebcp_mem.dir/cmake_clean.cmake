file(REMOVE_RECURSE
  "CMakeFiles/ebcp_mem.dir/mem/channel.cc.o"
  "CMakeFiles/ebcp_mem.dir/mem/channel.cc.o.d"
  "CMakeFiles/ebcp_mem.dir/mem/main_memory.cc.o"
  "CMakeFiles/ebcp_mem.dir/mem/main_memory.cc.o.d"
  "CMakeFiles/ebcp_mem.dir/mem/request.cc.o"
  "CMakeFiles/ebcp_mem.dir/mem/request.cc.o.d"
  "libebcp_mem.a"
  "libebcp_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ebcp_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
