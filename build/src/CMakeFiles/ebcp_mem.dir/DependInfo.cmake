
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/channel.cc" "src/CMakeFiles/ebcp_mem.dir/mem/channel.cc.o" "gcc" "src/CMakeFiles/ebcp_mem.dir/mem/channel.cc.o.d"
  "/root/repo/src/mem/main_memory.cc" "src/CMakeFiles/ebcp_mem.dir/mem/main_memory.cc.o" "gcc" "src/CMakeFiles/ebcp_mem.dir/mem/main_memory.cc.o.d"
  "/root/repo/src/mem/request.cc" "src/CMakeFiles/ebcp_mem.dir/mem/request.cc.o" "gcc" "src/CMakeFiles/ebcp_mem.dir/mem/request.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ebcp_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ebcp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
