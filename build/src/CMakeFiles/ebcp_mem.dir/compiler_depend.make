# Empty compiler generated dependencies file for ebcp_mem.
# This may be replaced when dependencies are built.
