file(REMOVE_RECURSE
  "libebcp_sim.a"
)
