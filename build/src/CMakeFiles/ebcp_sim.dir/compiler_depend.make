# Empty compiler generated dependencies file for ebcp_sim.
# This may be replaced when dependencies are built.
