file(REMOVE_RECURSE
  "CMakeFiles/ebcp_sim.dir/sim/cmp_system.cc.o"
  "CMakeFiles/ebcp_sim.dir/sim/cmp_system.cc.o.d"
  "CMakeFiles/ebcp_sim.dir/sim/hierarchy.cc.o"
  "CMakeFiles/ebcp_sim.dir/sim/hierarchy.cc.o.d"
  "CMakeFiles/ebcp_sim.dir/sim/l2_subsystem.cc.o"
  "CMakeFiles/ebcp_sim.dir/sim/l2_subsystem.cc.o.d"
  "CMakeFiles/ebcp_sim.dir/sim/prefetcher_factory.cc.o"
  "CMakeFiles/ebcp_sim.dir/sim/prefetcher_factory.cc.o.d"
  "CMakeFiles/ebcp_sim.dir/sim/simulator.cc.o"
  "CMakeFiles/ebcp_sim.dir/sim/simulator.cc.o.d"
  "libebcp_sim.a"
  "libebcp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ebcp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
