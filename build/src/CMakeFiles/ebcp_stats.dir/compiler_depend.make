# Empty compiler generated dependencies file for ebcp_stats.
# This may be replaced when dependencies are built.
