file(REMOVE_RECURSE
  "CMakeFiles/ebcp_stats.dir/stats/group.cc.o"
  "CMakeFiles/ebcp_stats.dir/stats/group.cc.o.d"
  "CMakeFiles/ebcp_stats.dir/stats/statistic.cc.o"
  "CMakeFiles/ebcp_stats.dir/stats/statistic.cc.o.d"
  "CMakeFiles/ebcp_stats.dir/stats/table.cc.o"
  "CMakeFiles/ebcp_stats.dir/stats/table.cc.o.d"
  "libebcp_stats.a"
  "libebcp_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ebcp_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
