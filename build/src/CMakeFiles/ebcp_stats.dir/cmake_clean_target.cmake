file(REMOVE_RECURSE
  "libebcp_stats.a"
)
