
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/group.cc" "src/CMakeFiles/ebcp_stats.dir/stats/group.cc.o" "gcc" "src/CMakeFiles/ebcp_stats.dir/stats/group.cc.o.d"
  "/root/repo/src/stats/statistic.cc" "src/CMakeFiles/ebcp_stats.dir/stats/statistic.cc.o" "gcc" "src/CMakeFiles/ebcp_stats.dir/stats/statistic.cc.o.d"
  "/root/repo/src/stats/table.cc" "src/CMakeFiles/ebcp_stats.dir/stats/table.cc.o" "gcc" "src/CMakeFiles/ebcp_stats.dir/stats/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ebcp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
