# Empty compiler generated dependencies file for ebcp_core.
# This may be replaced when dependencies are built.
