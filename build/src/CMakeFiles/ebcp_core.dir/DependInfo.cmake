
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/correlation_table.cc" "src/CMakeFiles/ebcp_core.dir/core/correlation_table.cc.o" "gcc" "src/CMakeFiles/ebcp_core.dir/core/correlation_table.cc.o.d"
  "/root/repo/src/core/ebcp.cc" "src/CMakeFiles/ebcp_core.dir/core/ebcp.cc.o" "gcc" "src/CMakeFiles/ebcp_core.dir/core/ebcp.cc.o.d"
  "/root/repo/src/core/emab.cc" "src/CMakeFiles/ebcp_core.dir/core/emab.cc.o" "gcc" "src/CMakeFiles/ebcp_core.dir/core/emab.cc.o.d"
  "/root/repo/src/core/table_allocation.cc" "src/CMakeFiles/ebcp_core.dir/core/table_allocation.cc.o" "gcc" "src/CMakeFiles/ebcp_core.dir/core/table_allocation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ebcp_prefetch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ebcp_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ebcp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ebcp_epoch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ebcp_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ebcp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
