file(REMOVE_RECURSE
  "libebcp_core.a"
)
