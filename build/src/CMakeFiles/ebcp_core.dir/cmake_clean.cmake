file(REMOVE_RECURSE
  "CMakeFiles/ebcp_core.dir/core/correlation_table.cc.o"
  "CMakeFiles/ebcp_core.dir/core/correlation_table.cc.o.d"
  "CMakeFiles/ebcp_core.dir/core/ebcp.cc.o"
  "CMakeFiles/ebcp_core.dir/core/ebcp.cc.o.d"
  "CMakeFiles/ebcp_core.dir/core/emab.cc.o"
  "CMakeFiles/ebcp_core.dir/core/emab.cc.o.d"
  "CMakeFiles/ebcp_core.dir/core/table_allocation.cc.o"
  "CMakeFiles/ebcp_core.dir/core/table_allocation.cc.o.d"
  "libebcp_core.a"
  "libebcp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ebcp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
