file(REMOVE_RECURSE
  "CMakeFiles/ebcp_cache.dir/cache/cache.cc.o"
  "CMakeFiles/ebcp_cache.dir/cache/cache.cc.o.d"
  "CMakeFiles/ebcp_cache.dir/cache/mshr.cc.o"
  "CMakeFiles/ebcp_cache.dir/cache/mshr.cc.o.d"
  "CMakeFiles/ebcp_cache.dir/cache/prefetch_buffer.cc.o"
  "CMakeFiles/ebcp_cache.dir/cache/prefetch_buffer.cc.o.d"
  "CMakeFiles/ebcp_cache.dir/cache/tag_array.cc.o"
  "CMakeFiles/ebcp_cache.dir/cache/tag_array.cc.o.d"
  "libebcp_cache.a"
  "libebcp_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ebcp_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
