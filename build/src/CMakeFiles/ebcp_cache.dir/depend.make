# Empty dependencies file for ebcp_cache.
# This may be replaced when dependencies are built.
