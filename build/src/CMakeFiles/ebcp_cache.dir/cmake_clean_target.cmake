file(REMOVE_RECURSE
  "libebcp_cache.a"
)
