
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/cache.cc" "src/CMakeFiles/ebcp_cache.dir/cache/cache.cc.o" "gcc" "src/CMakeFiles/ebcp_cache.dir/cache/cache.cc.o.d"
  "/root/repo/src/cache/mshr.cc" "src/CMakeFiles/ebcp_cache.dir/cache/mshr.cc.o" "gcc" "src/CMakeFiles/ebcp_cache.dir/cache/mshr.cc.o.d"
  "/root/repo/src/cache/prefetch_buffer.cc" "src/CMakeFiles/ebcp_cache.dir/cache/prefetch_buffer.cc.o" "gcc" "src/CMakeFiles/ebcp_cache.dir/cache/prefetch_buffer.cc.o.d"
  "/root/repo/src/cache/tag_array.cc" "src/CMakeFiles/ebcp_cache.dir/cache/tag_array.cc.o" "gcc" "src/CMakeFiles/ebcp_cache.dir/cache/tag_array.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ebcp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ebcp_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ebcp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
