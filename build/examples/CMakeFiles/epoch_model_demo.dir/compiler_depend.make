# Empty compiler generated dependencies file for epoch_model_demo.
# This may be replaced when dependencies are built.
