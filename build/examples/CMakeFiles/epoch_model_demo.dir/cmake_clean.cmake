file(REMOVE_RECURSE
  "CMakeFiles/epoch_model_demo.dir/epoch_model_demo.cpp.o"
  "CMakeFiles/epoch_model_demo.dir/epoch_model_demo.cpp.o.d"
  "epoch_model_demo"
  "epoch_model_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epoch_model_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
