file(REMOVE_RECURSE
  "CMakeFiles/oltp_tuning.dir/oltp_tuning.cpp.o"
  "CMakeFiles/oltp_tuning.dir/oltp_tuning.cpp.o.d"
  "oltp_tuning"
  "oltp_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oltp_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
