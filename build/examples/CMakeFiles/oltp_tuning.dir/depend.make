# Empty dependencies file for oltp_tuning.
# This may be replaced when dependencies are built.
