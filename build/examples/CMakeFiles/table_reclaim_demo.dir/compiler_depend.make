# Empty compiler generated dependencies file for table_reclaim_demo.
# This may be replaced when dependencies are built.
