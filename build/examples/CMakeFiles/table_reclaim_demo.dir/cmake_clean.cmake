file(REMOVE_RECURSE
  "CMakeFiles/table_reclaim_demo.dir/table_reclaim_demo.cpp.o"
  "CMakeFiles/table_reclaim_demo.dir/table_reclaim_demo.cpp.o.d"
  "table_reclaim_demo"
  "table_reclaim_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_reclaim_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
