# Empty dependencies file for ebcp_cli.
# This may be replaced when dependencies are built.
