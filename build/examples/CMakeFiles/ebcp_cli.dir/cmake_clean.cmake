file(REMOVE_RECURSE
  "CMakeFiles/ebcp_cli.dir/ebcp_cli.cpp.o"
  "CMakeFiles/ebcp_cli.dir/ebcp_cli.cpp.o.d"
  "ebcp_cli"
  "ebcp_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ebcp_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
