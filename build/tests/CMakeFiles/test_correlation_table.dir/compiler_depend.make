# Empty compiler generated dependencies file for test_correlation_table.
# This may be replaced when dependencies are built.
