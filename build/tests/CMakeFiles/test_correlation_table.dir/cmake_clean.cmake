file(REMOVE_RECURSE
  "CMakeFiles/test_correlation_table.dir/test_correlation_table.cc.o"
  "CMakeFiles/test_correlation_table.dir/test_correlation_table.cc.o.d"
  "test_correlation_table"
  "test_correlation_table.pdb"
  "test_correlation_table[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_correlation_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
