file(REMOVE_RECURSE
  "CMakeFiles/test_cmp.dir/test_cmp.cc.o"
  "CMakeFiles/test_cmp.dir/test_cmp.cc.o.d"
  "test_cmp"
  "test_cmp.pdb"
  "test_cmp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cmp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
