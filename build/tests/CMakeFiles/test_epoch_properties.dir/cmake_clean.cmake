file(REMOVE_RECURSE
  "CMakeFiles/test_epoch_properties.dir/test_epoch_properties.cc.o"
  "CMakeFiles/test_epoch_properties.dir/test_epoch_properties.cc.o.d"
  "test_epoch_properties"
  "test_epoch_properties.pdb"
  "test_epoch_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_epoch_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
