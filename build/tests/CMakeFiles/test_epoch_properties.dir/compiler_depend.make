# Empty compiler generated dependencies file for test_epoch_properties.
# This may be replaced when dependencies are built.
