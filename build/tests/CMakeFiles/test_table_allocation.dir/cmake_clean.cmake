file(REMOVE_RECURSE
  "CMakeFiles/test_table_allocation.dir/test_table_allocation.cc.o"
  "CMakeFiles/test_table_allocation.dir/test_table_allocation.cc.o.d"
  "test_table_allocation"
  "test_table_allocation.pdb"
  "test_table_allocation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_table_allocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
