# Empty dependencies file for test_table_allocation.
# This may be replaced when dependencies are built.
