# Empty dependencies file for test_ebcp.
# This may be replaced when dependencies are built.
