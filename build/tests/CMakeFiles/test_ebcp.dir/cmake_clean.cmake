file(REMOVE_RECURSE
  "CMakeFiles/test_ebcp.dir/test_ebcp.cc.o"
  "CMakeFiles/test_ebcp.dir/test_ebcp.cc.o.d"
  "test_ebcp"
  "test_ebcp.pdb"
  "test_ebcp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ebcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
