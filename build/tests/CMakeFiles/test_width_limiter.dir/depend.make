# Empty dependencies file for test_width_limiter.
# This may be replaced when dependencies are built.
