file(REMOVE_RECURSE
  "CMakeFiles/test_width_limiter.dir/test_width_limiter.cc.o"
  "CMakeFiles/test_width_limiter.dir/test_width_limiter.cc.o.d"
  "test_width_limiter"
  "test_width_limiter.pdb"
  "test_width_limiter[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_width_limiter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
