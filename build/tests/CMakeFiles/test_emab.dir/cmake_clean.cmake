file(REMOVE_RECURSE
  "CMakeFiles/test_emab.dir/test_emab.cc.o"
  "CMakeFiles/test_emab.dir/test_emab.cc.o.d"
  "test_emab"
  "test_emab.pdb"
  "test_emab[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_emab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
