# Empty dependencies file for test_emab.
# This may be replaced when dependencies are built.
