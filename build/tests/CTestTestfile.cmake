# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_branch_predictor[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_calibration[1]_include.cmake")
include("/root/repo/build/tests/test_channel_properties[1]_include.cmake")
include("/root/repo/build/tests/test_cmp[1]_include.cmake")
include("/root/repo/build/tests/test_core_model[1]_include.cmake")
include("/root/repo/build/tests/test_correlation_table[1]_include.cmake")
include("/root/repo/build/tests/test_ebcp[1]_include.cmake")
include("/root/repo/build/tests/test_emab[1]_include.cmake")
include("/root/repo/build/tests/test_epoch[1]_include.cmake")
include("/root/repo/build/tests/test_epoch_properties[1]_include.cmake")
include("/root/repo/build/tests/test_hierarchy[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_misc[1]_include.cmake")
include("/root/repo/build/tests/test_mshr[1]_include.cmake")
include("/root/repo/build/tests/test_prefetch_buffer[1]_include.cmake")
include("/root/repo/build/tests/test_prefetchers[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
include("/root/repo/build/tests/test_shapes[1]_include.cmake")
include("/root/repo/build/tests/test_simulator[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_table_allocation[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_trace_file[1]_include.cmake")
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_width_limiter[1]_include.cmake")
